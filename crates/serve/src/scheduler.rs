//! Dynamic micro-batching scheduler.
//!
//! Concurrent `next_item` requests from different sessions land in one
//! bounded queue; worker threads drain it under a *max-batch-size /
//! max-wait* policy — a worker takes the first available request, then
//! keeps collecting until the batch is full or the wait budget since the
//! first pop is spent — and answer every request in the batch with a
//! single [`InfluenceRecommender::next_items`] call against the current
//! model snapshot.
//!
//! The policy trades latency for throughput explicitly: `max_wait` is the
//! most latency a request can pay to find co-travellers; `max_batch`
//! bounds the forward-pass size.  Under load the queue never drains
//! between pops, so batches fill instantly and the wait budget is never
//! charged; at low load a request waits at most `max_wait` before
//! travelling alone — `BatchPolicy { max_batch: 1, .. }` degenerates to
//! no batching (the baseline configuration `serve_load --compare`
//! measures against).
//!
//! Batch composition is unobservable in the answers (the batched≡scalar
//! bitwise contract), so regrouping requests by arrival timing is safe.
//!
//! # Allocation discipline
//!
//! The handoff is built so a warm caller pays **zero allocations per
//! round-trip**: replies travel through a reusable [`EngineCaller`] slot
//! (a `Mutex` + `Condvar` cell, not a fresh channel per request), the
//! caller's `history`/`path` buffers move *into* the queued request and
//! are handed back through the slot when the worker answers, and the
//! worker itself keeps its batch/query/answer buffers across batches
//! (stack-allocated query slices up to [`STACK_QUERIES`]).  The legacy
//! [`Engine::next_item`] entry point allocates a fresh slot per call and
//! remains for tests and one-shot callers.
//!
//! [`InfluenceRecommender::next_items`]: irs_core::InfluenceRecommender::next_items

use std::collections::VecDeque;
use std::mem;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use irs_core::{ContextCache, NextQuery};
use irs_data::{ItemId, UserId};
use irs_obs::log_error;

use crate::metrics::ServeMetrics;
use crate::snapshot::{ModelSnapshot, SnapshotRegistry, NUM_ARMS};

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Largest coalesced batch (1 disables batching).
    pub max_batch: usize,
    /// Longest a worker waits for co-travellers after the first request
    /// of a batch arrives.
    pub max_wait: Duration,
    /// Scheduler worker threads draining the queue.
    pub workers: usize,
    /// Bound on queued requests; producers block when it is reached
    /// (backpressure instead of unbounded memory growth).
    pub queue_capacity: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(500),
            workers: 2,
            queue_capacity: 1024,
        }
    }
}

/// Where a worker writes a request's answer and hands the caller's
/// buffers back.  One slot serves one in-flight request at a time but is
/// reused across requests by [`EngineCaller`].
#[derive(Default)]
struct ReplyState {
    done: bool,
    answer: Option<ItemId>,
    /// The caller's `history`/`path` buffers, returned so the next
    /// request on this slot reuses their capacity.
    history: Vec<ItemId>,
    path: Vec<ItemId>,
    /// The session's context cache, updated by the worker and returned
    /// for the caller to park back in its session store.
    cache: Option<ContextCache>,
}

#[derive(Default)]
struct ReplySlot {
    state: Mutex<ReplyState>,
    ready: Condvar,
}

impl ReplySlot {
    fn arm(&self) {
        let mut st = self.state.lock().expect("reply slot poisoned");
        st.done = false;
        st.answer = None;
        st.cache = None;
    }
}

/// The worker-side handle on a slot.  `deliver` answers the request and
/// returns the buffers; dropping an undelivered reply (a worker dying
/// mid-batch) still wakes the caller with `None` so nobody blocks
/// forever.
struct Reply {
    slot: Arc<ReplySlot>,
    delivered: bool,
}

impl Reply {
    fn new(slot: Arc<ReplySlot>) -> Self {
        Reply { slot, delivered: false }
    }

    fn deliver(
        mut self,
        answer: Option<ItemId>,
        history: Vec<ItemId>,
        path: Vec<ItemId>,
        cache: Option<ContextCache>,
    ) {
        self.delivered = true;
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        st.answer = answer;
        st.history = history;
        st.path = path;
        st.cache = cache;
        st.done = true;
        drop(st);
        self.slot.ready.notify_one();
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if !self.delivered {
            let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
            st.done = true;
            drop(st);
            self.slot.ready.notify_one();
        }
    }
}

/// One queued scoring request: the session state needed to build a
/// [`NextQuery`], plus the slot the answer travels back on.
struct ScoreRequest {
    user: UserId,
    history: Vec<ItemId>,
    objective: ItemId,
    path: Vec<ItemId>,
    /// The session's incremental state, travelling with the request (see
    /// [`EngineCaller::stage_cache`]).
    cache: Option<ContextCache>,
    /// Whether this session participates in context caching at all; when
    /// false the request always takes the batched path untouched.
    want_cache: bool,
    /// The traffic arm (snapshot slot) this request scores against.
    arm: usize,
    /// When the request entered the queue — the start of its
    /// `queue`-stage span.
    enqueued_at: Instant,
    reply: Reply,
}

impl ScoreRequest {
    fn query(&self) -> NextQuery<'_> {
        NextQuery {
            user: self.user,
            history: &self.history,
            objective: self.objective,
            path: &self.path,
        }
    }
}

struct QueueInner {
    requests: VecDeque<ScoreRequest>,
    shutdown: bool,
}

struct SharedQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// A caller-owned scheduling workspace: one reusable reply slot plus the
/// `history`/`path` staging buffers a request is built from.  Fill the
/// buffers, call [`Engine::next_item_with`], repeat — a warm caller
/// allocates nothing per round-trip (the buffers travel to the worker
/// and come back through the slot).
pub struct EngineCaller {
    slot: Arc<ReplySlot>,
    history: Vec<ItemId>,
    path: Vec<ItemId>,
    cache: Option<ContextCache>,
    want_cache: bool,
    arm: usize,
}

impl EngineCaller {
    /// Create an empty workspace (the one-time allocations happen here).
    pub fn new() -> Self {
        EngineCaller {
            slot: Arc::new(ReplySlot::default()),
            history: Vec::new(),
            path: Vec::new(),
            cache: None,
            want_cache: false,
            arm: 0,
        }
    }

    /// Score the next round-trip against `arm`'s snapshot (sticky
    /// traffic-split assignment).  Like the staged cache, this is per
    /// round-trip: [`Engine::next_item_with`] resets it to the stable
    /// arm, so a forgotten restage can only ever fall back to stable.
    pub fn set_arm(&mut self, arm: usize) {
        self.arm = arm.min(NUM_ARMS - 1);
    }

    /// Stage the session's context cache (possibly `None` — a first
    /// request, or one whose cache was evicted) for the next round-trip
    /// and opt the request into cached serving.  The worker updates the
    /// state and hands it back; collect it with
    /// [`EngineCaller::take_cache`] after the round-trip and park it in
    /// the session store.
    pub fn stage_cache(&mut self, cache: Option<ContextCache>) {
        self.cache = cache;
        self.want_cache = true;
    }

    /// The context cache returned by the last round-trip, if any.
    pub fn take_cache(&mut self) -> Option<ContextCache> {
        self.cache.take()
    }

    /// The staging buffer for the query's viewing history.  Cleared by
    /// [`Engine::next_item_with`] after each round-trip.
    pub fn history_mut(&mut self) -> &mut Vec<ItemId> {
        &mut self.history
    }

    /// The staging buffer for the query's path-so-far.  Cleared by
    /// [`Engine::next_item_with`] after each round-trip.
    pub fn path_mut(&mut self) -> &mut Vec<ItemId> {
        &mut self.path
    }
}

impl Default for EngineCaller {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the engine counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests answered.
    pub requests: u64,
    /// Batched forward passes issued.
    pub batches: u64,
    /// Requests the recommender could not extend a path for.
    pub gave_up: u64,
    /// Cache-opted requests whose stored prefix was reused.
    pub cache_hits: u64,
    /// Cache-opted requests that had to (re)encode their context from
    /// scratch (first request of a session, evicted cache, or a history
    /// that stopped extending the stored prefix).
    pub cache_misses: u64,
    /// Caches discarded because a snapshot hot-swap outdated their
    /// generation.
    pub cache_invalidations: u64,
}

impl StatsSnapshot {
    /// Mean coalesced batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The micro-batching engine: a bounded request queue plus worker threads
/// scoring coalesced batches against [`SnapshotRegistry::current`].
pub struct Engine {
    queue: Arc<SharedQueue>,
    registry: Arc<SnapshotRegistry>,
    metrics: Arc<ServeMetrics>,
    policy: BatchPolicy,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Engine {
    /// Spawn the scheduler's worker threads.
    pub fn start(registry: Arc<SnapshotRegistry>, policy: BatchPolicy) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(policy.workers >= 1, "at least one worker is required");
        assert!(policy.queue_capacity >= 1, "queue capacity must be at least 1");
        let queue = Arc::new(SharedQueue {
            inner: Mutex::new(QueueInner { requests: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: policy.queue_capacity,
        });
        let metrics = Arc::new(ServeMetrics::new());
        let workers = (0..policy.workers)
            .map(|_| {
                let queue = queue.clone();
                let registry = registry.clone();
                let metrics = metrics.clone();
                let policy = policy.clone();
                std::thread::spawn(move || worker_loop(&queue, &registry, &metrics, &policy))
            })
            .collect();
        Engine { queue, registry, metrics, policy, workers: Mutex::new(workers) }
    }

    /// The snapshot registry this engine scores against.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// The metrics registry this engine (and the frontend built on it)
    /// records into.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// The batching policy the engine runs under.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Submit one request and block until the scheduler answers it.
    /// Returns `None` when the recommender cannot extend the path or the
    /// engine is shutting down.
    ///
    /// This is the one-shot entry point (it allocates a fresh reply slot
    /// per call); steady-state servers should hold an [`EngineCaller`]
    /// and use [`Engine::next_item_with`] instead.
    pub fn next_item(
        &self,
        user: UserId,
        history: Vec<ItemId>,
        objective: ItemId,
        path: Vec<ItemId>,
    ) -> Option<ItemId> {
        let slot = Arc::new(ReplySlot::default());
        self.submit_and_wait(&slot, user, history, objective, path, None, false, 0).0
    }

    /// The allocation-free round-trip: submit a request built from the
    /// caller's staged `history`/`path` buffers, block for the batched
    /// answer, and reclaim the buffers (cleared, capacity kept) for the
    /// next request.
    pub fn next_item_with(
        &self,
        caller: &mut EngineCaller,
        user: UserId,
        objective: ItemId,
    ) -> Option<ItemId> {
        let history = mem::take(&mut caller.history);
        let path = mem::take(&mut caller.path);
        let cache = caller.cache.take();
        let want_cache = caller.want_cache;
        let arm = caller.arm;
        let (answer, mut history, mut path, cache) = self.submit_and_wait(
            &caller.slot,
            user,
            history,
            objective,
            path,
            cache,
            want_cache,
            arm,
        );
        history.clear();
        path.clear();
        caller.history = history;
        caller.path = path;
        caller.cache = cache;
        caller.want_cache = false;
        caller.arm = 0;
        answer
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_and_wait(
        &self,
        slot: &Arc<ReplySlot>,
        user: UserId,
        history: Vec<ItemId>,
        objective: ItemId,
        path: Vec<ItemId>,
        cache: Option<ContextCache>,
        want_cache: bool,
        arm: usize,
    ) -> (Option<ItemId>, Vec<ItemId>, Vec<ItemId>, Option<ContextCache>) {
        slot.arm();
        {
            let mut inner = self.queue.inner.lock().expect("serve queue poisoned");
            while inner.requests.len() >= self.queue.capacity && !inner.shutdown {
                inner = self.queue.not_full.wait(inner).expect("serve queue poisoned");
            }
            if inner.shutdown {
                return (None, history, path, cache);
            }
            inner.requests.push_back(ScoreRequest {
                user,
                history,
                objective,
                path,
                cache,
                want_cache,
                arm: arm.min(NUM_ARMS - 1),
                enqueued_at: Instant::now(),
                reply: Reply::new(slot.clone()),
            });
        }
        self.queue.not_empty.notify_one();
        let mut st = slot.state.lock().expect("reply slot poisoned");
        while !st.done {
            st = slot.ready.wait(st).expect("reply slot poisoned");
        }
        let answer = st.answer.take();
        let history = mem::take(&mut st.history);
        let path = mem::take(&mut st.path);
        let cache = st.cache.take();
        (answer, history, path, cache)
    }

    /// One scheduling round-trip for a live session: clone its query
    /// state and block for the batched answer.  Feed the result back
    /// with [`InteractiveSession::record`] /
    /// [`InteractiveSession::record_give_up`] (the session stays with
    /// the caller — under a store lock, on a client thread, wherever).
    ///
    /// [`InteractiveSession::record`]: irs_core::InteractiveSession::record
    /// [`InteractiveSession::record_give_up`]: irs_core::InteractiveSession::record_give_up
    pub fn propose(&self, session: &irs_core::InteractiveSession) -> Option<ItemId> {
        let q = session.query();
        self.next_item(q.user, q.history.to_vec(), q.objective, q.path.to_vec())
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.metrics.requests.get(),
            batches: self.metrics.batches.get(),
            gave_up: self.metrics.gave_up.get(),
            cache_hits: self.metrics.cache_hits.get(),
            cache_misses: self.metrics.cache_misses.get(),
            cache_invalidations: self.metrics.cache_invalidations.get(),
        }
    }

    /// Drain the queue, stop the workers and join them (idempotent).
    /// Queued requests are still answered; requests submitted after
    /// shutdown get `None`.
    pub fn shutdown(&self) {
        {
            let mut inner = self.queue.inner.lock().expect("serve queue poisoned");
            inner.shutdown = true;
        }
        self.queue.not_empty.notify_all();
        self.queue.not_full.notify_all();
        let handles: Vec<_> =
            self.workers.lock().expect("worker list poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Record a popped request's `queue`-stage span (time spent waiting for
/// a worker).  Queue/assemble spans are labelled by the request's cache
/// *intent* (`want_cache`); the forward span relabels by the path
/// actually taken.
fn record_queue_wait(metrics: &ServeMetrics, req: &ScoreRequest, now: Instant) {
    metrics.stages.queue[req.arm.min(NUM_ARMS - 1)][usize::from(req.want_cache)]
        .record(now.saturating_duration_since(req.enqueued_at));
}

/// Collect one micro-batch into `batch` (cleared first): block for the
/// first request, then keep taking until the batch is full or `max_wait`
/// since the first pop has elapsed.  Returns the instant of the first
/// pop (the start of the batch's `assemble` span), or `None` when the
/// engine shut down and the queue is drained.
fn collect_batch(
    queue: &SharedQueue,
    policy: &BatchPolicy,
    batch: &mut Vec<ScoreRequest>,
    metrics: &ServeMetrics,
) -> Option<Instant> {
    batch.clear();
    let mut inner = queue.inner.lock().expect("serve queue poisoned");
    loop {
        if let Some(first) = inner.requests.pop_front() {
            queue.not_full.notify_one();
            let first_pop = Instant::now();
            record_queue_wait(metrics, &first, first_pop);
            batch.push(first);
            let deadline = first_pop + policy.max_wait;
            while batch.len() < policy.max_batch {
                if let Some(req) = inner.requests.pop_front() {
                    queue.not_full.notify_one();
                    record_queue_wait(metrics, &req, Instant::now());
                    batch.push(req);
                    continue;
                }
                if inner.shutdown {
                    break; // don't charge the wait budget during drain
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = queue
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .expect("serve queue poisoned");
                inner = guard;
                if timeout.timed_out() && inner.requests.is_empty() {
                    break;
                }
            }
            return Some(first_pop);
        }
        if inner.shutdown {
            return None;
        }
        inner = queue.not_empty.wait(inner).expect("serve queue poisoned");
    }
}

/// Batches at most this large borrow a stack-allocated query slice; the
/// rare larger batch falls back to a heap `Vec` (one allocation per
/// *batch*, not per request).
const STACK_QUERIES: usize = 64;

/// A context cache freshly minted against `snapshot`, or `None` when the
/// model has no incremental path.
fn fresh_cache(snapshot: &ModelSnapshot, version: u64) -> Option<ContextCache> {
    snapshot.model.new_context_cache().map(|state| ContextCache { state, generation: version })
}

fn worker_loop(
    queue: &SharedQueue,
    registry: &SnapshotRegistry,
    metrics: &ServeMetrics,
    policy: &BatchPolicy,
) {
    const EMPTY_QUERY: NextQuery<'static> =
        NextQuery { user: 0, history: &[], objective: 0, path: &[] };
    // Worker-lifetime buffers: reused across batches so a warm worker
    // allocates nothing per batch.
    let mut batch: Vec<ScoreRequest> = Vec::with_capacity(policy.max_batch);
    let mut answers: Vec<Option<ItemId>> = Vec::with_capacity(policy.max_batch);
    let mut cold: [Vec<usize>; NUM_ARMS] =
        std::array::from_fn(|_| Vec::with_capacity(policy.max_batch));
    let mut cold_answers: Vec<Option<ItemId>> = Vec::with_capacity(policy.max_batch);
    while let Some(first_pop) = collect_batch(queue, policy, &mut batch, metrics) {
        // The assemble span — time spent coalescing after the first pop
        // — is shared by every request in the batch.
        let assembled = first_pop.elapsed();
        for req in batch.iter() {
            metrics.stages.assemble[req.arm.min(NUM_ARMS - 1)][usize::from(req.want_cache)]
                .record(assembled);
        }
        // One snapshot per (batch, arm): every request in the batch bound
        // for a given arm is scored by the same model even if a publish
        // lands mid-flight.  Arms are fetched lazily — the common
        // all-stable batch never touches the canary slot's lock — and
        // each version is read consistently with its snapshot so the
        // generation checks below can't mix an old model with a new
        // version.
        let mut arms: [Option<(Arc<ModelSnapshot>, u64)>; NUM_ARMS] = std::array::from_fn(|_| None);
        answers.clear();
        answers.resize(batch.len(), None);
        for c in &mut cold {
            c.clear();
        }
        cold_answers.clear();
        // Panic isolation: a model panic (bad input reaching an
        // embedding lookup, a future model bug) must not kill the worker
        // — one dead worker silently halves capacity and once all are
        // gone every submitter blocks forever.  The poisoned batch is
        // answered `None`; the worker lives on.
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // A coalesced batch mixes cached and cold sessions: requests
            // carrying per-session state take the incremental path one by
            // one (their step is O(1) in the context length, so skipping
            // the batched forward costs nothing), the rest coalesce into
            // one batched forward *per arm*.
            for i in 0..batch.len() {
                let req = &mut batch[i];
                let a = req.arm.min(NUM_ARMS - 1);
                if !req.want_cache {
                    cold[a].push(i);
                    continue;
                }
                let (snapshot, version) = {
                    let slot = arms[a].get_or_insert_with(|| registry.arm_versioned(a));
                    (slot.0.clone(), slot.1)
                };
                let cache = match req.cache.take() {
                    Some(c) if c.generation == version => Some(c),
                    Some(_stale) => {
                        metrics.cache_invalidations.inc();
                        fresh_cache(&snapshot, version)
                    }
                    None => fresh_cache(&snapshot, version),
                };
                let Some(mut cache) = cache else {
                    // The model has no incremental path; serve batched.
                    cold[a].push(i);
                    continue;
                };
                let forward_started = Instant::now();
                let (answer, hit) =
                    snapshot.model.next_item_cached(&req.query(), cache.state.as_mut());
                metrics.stages.forward[a][1].record(forward_started.elapsed());
                let counter = if hit { &metrics.cache_hits } else { &metrics.cache_misses };
                counter.inc();
                answers[i] = answer;
                req.cache = Some(cache);
            }
            for (a, cold) in cold.iter().enumerate() {
                if cold.is_empty() {
                    continue;
                }
                let snapshot = {
                    let slot = arms[a].get_or_insert_with(|| registry.arm_versioned(a));
                    slot.0.clone()
                };
                cold_answers.clear();
                let forward_started = Instant::now();
                if cold.len() <= STACK_QUERIES {
                    let mut qbuf = [EMPTY_QUERY; STACK_QUERIES];
                    for (slot, &i) in qbuf.iter_mut().zip(cold.iter()) {
                        *slot = batch[i].query();
                    }
                    snapshot.model.next_items_into(&qbuf[..cold.len()], &mut cold_answers);
                } else {
                    let queries: Vec<NextQuery<'_>> =
                        cold.iter().map(|&i| batch[i].query()).collect();
                    snapshot.model.next_items_into(&queries, &mut cold_answers);
                }
                // The shared batched forward is attributed to every
                // request that rode it.
                let forward = forward_started.elapsed();
                for _ in cold.iter() {
                    metrics.stages.forward[a][0].record(forward);
                }
                if cold_answers.len() != cold.len() {
                    return false;
                }
                for (&i, answer) in cold.iter().zip(cold_answers.drain(..)) {
                    answers[i] = answer;
                }
            }
            true
        }));
        match scored {
            Ok(true) => {}
            Ok(false) => {
                // Cached answers and fully-scored arms are sound; only
                // the short-answered arm's batched cold requests (and any
                // arm after it) stay `None`.
                log_error!(
                    "scheduler",
                    "model under-answered a batched arm; answering None for the rest"
                );
            }
            Err(_) => {
                log_error!(
                    "scheduler",
                    "model panicked scoring a batch of {}; answering None",
                    batch.len()
                );
                answers.clear();
                answers.resize(batch.len(), None);
            }
        }
        metrics.requests.add(batch.len() as u64);
        metrics.batches.inc();
        metrics.gave_up.add(answers.iter().filter(|a| a.is_none()).count() as u64);
        for (req, answer) in batch.drain(..).zip(answers.drain(..)) {
            let ScoreRequest { history, path, reply, cache, .. } = req;
            reply.deliver(answer, history, path, cache);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ModelSnapshot;
    use irs_core::InfluenceRecommender;

    /// Deterministic stand-in: answers `base + path.len()`, unless the
    /// objective is reachable.
    struct Walker {
        base: ItemId,
    }

    impl InfluenceRecommender for Walker {
        fn name(&self) -> String {
            "walker".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            objective: ItemId,
            path: &[ItemId],
        ) -> Option<ItemId> {
            let next = self.base + path.len();
            (next <= objective).then_some(next)
        }
    }

    fn engine(policy: BatchPolicy) -> Engine {
        let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory(
            "walker",
            Box::new(Walker { base: 10 }),
        )));
        Engine::start(registry, policy)
    }

    #[test]
    fn answers_match_the_scalar_recommender() {
        let eng = engine(BatchPolicy::default());
        assert_eq!(eng.next_item(0, vec![1], 99, vec![]), Some(10));
        assert_eq!(eng.next_item(0, vec![1], 99, vec![10, 11]), Some(12));
        assert_eq!(eng.next_item(0, vec![1], 5, vec![]), None, "unreachable objective");
        let stats = eng.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.gave_up, 1);
        eng.shutdown();
    }

    #[test]
    fn workspace_round_trips_match_and_reclaim_buffers() {
        let eng = engine(BatchPolicy::default());
        let mut caller = EngineCaller::new();
        caller.history_mut().extend_from_slice(&[1, 2, 3]);
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), Some(10));
        assert!(caller.history_mut().is_empty(), "buffers come back cleared");
        assert!(caller.path_mut().is_empty());
        assert!(caller.history_mut().capacity() >= 3, "…but keep their capacity");
        caller.history_mut().push(1);
        caller.path_mut().extend_from_slice(&[10, 11]);
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), Some(12));
        caller.history_mut().push(1);
        assert_eq!(eng.next_item_with(&mut caller, 0, 5), None, "unreachable objective");
        eng.shutdown();
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), None, "post-shutdown answers None");
    }

    #[test]
    fn concurrent_requests_coalesce_into_batches() {
        let eng = Arc::new(engine(BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            workers: 1,
            queue_capacity: 64,
        }));
        let mut handles = Vec::new();
        for t in 0..16usize {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || eng.next_item(t, vec![t], 99, vec![])));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(10));
        }
        let stats = eng.stats();
        assert_eq!(stats.requests, 16);
        assert!(
            stats.batches < 16,
            "16 concurrent requests with a 50ms window must share batches (got {})",
            stats.batches
        );
        eng.shutdown();
    }

    #[test]
    fn batch_size_one_still_answers_everything() {
        let eng = Arc::new(engine(BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 2,
            queue_capacity: 4, // force backpressure too
        }));
        let mut handles = Vec::new();
        for t in 0..12usize {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || eng.next_item(t, vec![], 99, vec![])));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(10));
        }
        let stats = eng.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(stats.batches, 12, "max_batch 1 must never coalesce");
        eng.shutdown();
    }

    #[test]
    fn shutdown_answers_queued_requests_and_rejects_new_ones() {
        let eng = engine(BatchPolicy::default());
        assert_eq!(eng.next_item(0, vec![], 99, vec![]), Some(10));
        eng.shutdown();
        // A fresh engine whose queue is already shut down answers None.
        let eng = engine(BatchPolicy::default());
        {
            let mut inner = eng.queue.inner.lock().unwrap();
            inner.shutdown = true;
        }
        assert_eq!(eng.next_item(0, vec![], 99, vec![]), None);
        eng.shutdown();
    }

    #[test]
    fn oversized_batches_fall_back_to_the_heap_path() {
        // max_batch larger than the stack query buffer exercises the
        // heap fallback in `worker_loop`.
        let eng = Arc::new(engine(BatchPolicy {
            max_batch: STACK_QUERIES + 8,
            max_wait: Duration::from_millis(20),
            workers: 1,
            queue_capacity: 256,
        }));
        let mut handles = Vec::new();
        for t in 0..(STACK_QUERIES + 8) {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || eng.next_item(t, vec![], 99, vec![])));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(10));
        }
        assert_eq!(eng.stats().requests, (STACK_QUERIES + 8) as u64);
        eng.shutdown();
    }

    #[test]
    fn requests_route_to_their_assigned_arm() {
        use crate::snapshot::CANARY_ARM;
        let eng = engine(BatchPolicy::default());
        // Publish a distinguishable model on the canary arm.
        eng.registry()
            .publish(CANARY_ARM, ModelSnapshot::in_memory("canary", Box::new(Walker { base: 50 })));
        let mut caller = EngineCaller::new();
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), Some(10), "default is stable");
        caller.set_arm(CANARY_ARM);
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), Some(50), "canary serves its model");
        // The arm resets after each round-trip (sticky assignment is
        // restaged per request by the frontend).
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), Some(10));
        // Out-of-range arms clamp instead of panicking.
        caller.set_arm(99);
        assert_eq!(eng.next_item_with(&mut caller, 0, 99), Some(50));
        eng.shutdown();
    }

    #[test]
    fn mean_batch_reflects_coalescing() {
        let s = StatsSnapshot {
            requests: 12,
            batches: 3,
            gave_up: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
        };
        assert!((s.mean_batch() - 4.0).abs() < 1e-12);
        let empty = StatsSnapshot { requests: 0, batches: 0, gave_up: 0, ..s };
        assert_eq!(empty.mean_batch(), 0.0);
    }
}
