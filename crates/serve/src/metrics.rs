//! The serving stack's unified metrics surface.
//!
//! One [`Registry`] owns every counter the server exports; the
//! scheduler, session store, traffic split, online trainer and HTTP
//! frontend all record through handles registered here.  `GET /metrics`
//! (Prometheus text exposition) and `GET /v1/stats` (flat JSON) are
//! both rendered from this registry, so the two endpoints share one
//! vocabulary by construction: every `/v1/stats` key `k` is the
//! `/metrics` family `irs_k` (or `irs_k_info` for string annotations).
//!
//! Two recording disciplines coexist:
//!
//! - **Hot-path handles** (scheduler counters, per-arm traffic
//!   counters, stage histograms) are bumped inline by the worker and
//!   handler threads — lock-free atomics, zero allocation.
//! - **Sampled values** (session census, cache residency, snapshot
//!   labels, online-trainer stats, config echoes) are copied into their
//!   gauges by `sample_metrics` in `http.rs` immediately before either
//!   endpoint renders, so scrapes see a coherent point-in-time view
//!   without threading registry handles through every subsystem.
//!
//! Flat keys are registered in the exact order the hand-written
//! `/v1/stats` serialiser used, so the JSON payload is byte-compatible
//! with earlier releases (new `arm{i}_window_*` keys extend each arm
//! block).

use irs_obs::{Counter, Flag, Gauge, Registry, Text};

use crate::snapshot::NUM_ARMS;
use crate::split::ArmMetrics;
use irs_obs::Histogram;

/// Per-arm registry handles: sampled gauges plus the hot
/// [`ArmMetrics`] the traffic split records through.
pub(crate) struct ArmObs {
    pub(crate) weight: Gauge,
    pub(crate) snapshot: Text,
    pub(crate) version: Gauge,
    pub(crate) sessions: Gauge,
    pub(crate) acceptance_rate: Gauge,
    pub(crate) p50_us: Gauge,
    pub(crate) p95_us: Gauge,
    pub(crate) window_requests: Gauge,
    pub(crate) window_accepted: Gauge,
    pub(crate) window_rejected: Gauge,
    pub(crate) window_acceptance_rate: Gauge,
    pub(crate) window_mean_us: Gauge,
    /// Hot handles shared with the [`crate::split::TrafficSplit`].
    pub(crate) hot: ArmMetrics,
}

impl ArmObs {
    fn register(r: &Registry, arm: usize) -> ArmObs {
        let name = |suffix: &str| format!("arm{arm}_{suffix}");
        let weight = r.gauge(&name("weight"), "Traffic share routed to this arm");
        let snapshot = r.text(&name("snapshot"), "Snapshot label served by this arm");
        let version = r.gauge(&name("version"), "Snapshot version served by this arm");
        let sessions = r.gauge(&name("sessions"), "Live sessions sticky-assigned to this arm");
        let requests = r.counter(&name("requests"), "Proposals served through this arm");
        let accepted = r.counter(&name("accepted"), "Feedback events accepted on this arm");
        let rejected = r.counter(&name("rejected"), "Feedback events rejected on this arm");
        let acceptance_rate =
            r.gauge(&name("acceptance_rate"), "Lifetime accepted/(accepted+rejected)");
        let p50_us = r.gauge(&name("p50_us"), "Lifetime round-trip latency p50 (µs)");
        let p95_us = r.gauge(&name("p95_us"), "Lifetime round-trip latency p95 (µs)");
        let window_requests =
            r.gauge(&name("window_requests"), "Proposals served inside the sliding window");
        let window_accepted =
            r.gauge(&name("window_accepted"), "Feedback accepted inside the sliding window");
        let window_rejected =
            r.gauge(&name("window_rejected"), "Feedback rejected inside the sliding window");
        let window_acceptance_rate =
            r.gauge(&name("window_acceptance_rate"), "Acceptance rate over the sliding window");
        let window_mean_us = r
            .gauge(&name("window_mean_us"), "Mean round-trip latency (µs) over the sliding window");
        let latency =
            r.histogram(&name("latency_us"), "Round-trip latency histogram for this arm (µs)");
        ArmObs {
            weight,
            snapshot,
            version,
            sessions,
            acceptance_rate,
            p50_us,
            p95_us,
            window_requests,
            window_accepted,
            window_rejected,
            window_acceptance_rate,
            window_mean_us,
            hot: ArmMetrics::with_handles(requests, accepted, rejected, latency),
        }
    }
}

/// Online-trainer handles, all sampled from
/// [`crate::online::OnlineHandle::stats`] at scrape time (zeroes when
/// online training is off, so dashboards scrape one stable schema).
pub(crate) struct OnlineObs {
    pub(crate) enabled: Flag,
    pub(crate) events_logged: Counter,
    pub(crate) events_dropped: Counter,
    pub(crate) replay_len: Gauge,
    pub(crate) folds: Counter,
    pub(crate) examples: Counter,
    pub(crate) publishes: Counter,
    pub(crate) last_loss: Gauge,
    pub(crate) trainer_panics: Counter,
    pub(crate) trainer_alive: Flag,
}

impl OnlineObs {
    fn register(r: &Registry) -> OnlineObs {
        OnlineObs {
            enabled: r.flag("online_enabled", "Whether an online trainer is attached"),
            events_logged: r
                .counter("online_events_logged", "Feedback events logged to the replay buffer"),
            events_dropped: r
                .counter("online_events_dropped", "Feedback events dropped by the replay buffer"),
            replay_len: r
                .gauge("online_replay_len", "Feedback events resident in the replay buffer"),
            folds: r.counter("online_folds", "Online training folds completed"),
            examples: r.counter("online_examples", "Replay examples consumed by online folds"),
            publishes: r.counter("online_publishes", "Canary snapshots published by the trainer"),
            last_loss: r.gauge("online_last_loss", "Loss of the most recent online fold"),
            trainer_panics: r.counter("online_trainer_panics", "Online trainer panics survived"),
            trainer_alive: r.flag("online_trainer_alive", "Whether the trainer thread is alive"),
        }
    }
}

/// Per-request stage-timing histograms: one `stage_latency_us` family,
/// labelled by `stage` (`queue` wait → batch `assemble` → model
/// `forward` → response `encode`), `arm`, and `cached` (`hot` for the
/// incremental context-cache path, `cold` for the batched path).
/// Indexing is `[arm][cached as usize]`.
pub(crate) struct StageTimers {
    pub(crate) queue: [[Histogram; 2]; NUM_ARMS],
    pub(crate) assemble: [[Histogram; 2]; NUM_ARMS],
    pub(crate) forward: [[Histogram; 2]; NUM_ARMS],
    pub(crate) encode: [[Histogram; 2]; NUM_ARMS],
}

impl StageTimers {
    fn register(r: &Registry) -> StageTimers {
        const HELP: &str = "Per-request stage latency (µs) by stage, arm and cache path";
        let series = |stage: &str| -> [[Histogram; 2]; NUM_ARMS] {
            std::array::from_fn(|arm| {
                std::array::from_fn(|cached| {
                    let path = if cached == 1 { "hot" } else { "cold" };
                    let labels = format!("stage=\"{stage}\",arm=\"{arm}\",cached=\"{path}\"");
                    r.histogram_with_labels("stage_latency_us", HELP, &labels)
                })
            })
        };
        StageTimers {
            queue: series("queue"),
            assemble: series("assemble"),
            forward: series("forward"),
            encode: series("encode"),
        }
    }
}

/// Every metric the serving stack exports, plus the [`Registry`] that
/// renders them.  Owned by the [`crate::scheduler::Engine`] (one per
/// engine, shared with the HTTP frontend through `engine.metrics()`).
pub struct ServeMetrics {
    registry: Registry,
    // Scheduler hot-path counters.
    pub(crate) requests: Counter,
    pub(crate) batches: Counter,
    pub(crate) mean_batch: Gauge,
    pub(crate) gave_up: Counter,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) cache_invalidations: Counter,
    // Sampled at scrape time.
    pub(crate) cache_resident_bytes: Gauge,
    pub(crate) cache_evictions: Counter,
    pub(crate) sessions: Gauge,
    pub(crate) evicted_sessions: Counter,
    pub(crate) snapshot: Text,
    pub(crate) snapshot_version: Gauge,
    pub(crate) snapshot_params: Gauge,
    pub(crate) max_batch: Gauge,
    pub(crate) max_wait_us: Gauge,
    pub(crate) workers: Gauge,
    pub(crate) http_workers: Gauge,
    pub(crate) open_connections: Gauge,
    pub(crate) layout: Text,
    pub(crate) context_cache_budget_mb: Gauge,
    pub(crate) arms: [ArmObs; NUM_ARMS],
    pub(crate) online: OnlineObs,
    pub(crate) uptime_ms: Gauge,
    pub(crate) stages: StageTimers,
}

impl ServeMetrics {
    /// Register the full serving vocabulary on a fresh registry.
    pub fn new() -> ServeMetrics {
        let r = Registry::new();
        let requests = r.counter("requests", "Requests answered by the scheduler");
        let batches = r.counter("batches", "Batched forward passes issued");
        let mean_batch = r.gauge("mean_batch", "Mean coalesced batch size");
        let gave_up = r.counter("gave_up", "Requests the recommender could not extend a path for");
        let cache_hits = r.counter("cache_hits", "Context-cache prefix reuses");
        let cache_misses = r.counter("cache_misses", "Context-cache rebuilds from scratch");
        let cache_invalidations =
            r.counter("cache_invalidations", "Context caches outdated by a snapshot swap");
        let cache_resident_bytes =
            r.gauge("cache_resident_bytes", "Bytes of parked per-session context caches");
        let cache_evictions =
            r.counter("cache_evictions", "Context caches evicted to stay within the byte budget");
        let sessions = r.gauge("sessions", "Live sessions");
        let evicted_sessions =
            r.counter("evicted_sessions", "Sessions aged out by the TTL sweeper");
        let snapshot = r.text("snapshot", "Label of the stable snapshot");
        let snapshot_version = r.gauge("snapshot_version", "Version of the stable snapshot");
        let snapshot_params = r.gauge("snapshot_params", "Scalar parameter count of the snapshot");
        let max_batch = r.gauge("max_batch", "Configured largest coalesced batch");
        let max_wait_us = r.gauge("max_wait_us", "Configured batching wait budget (µs)");
        let workers = r.gauge("workers", "Scheduler worker threads");
        let http_workers = r.gauge("http_workers", "HTTP worker threads");
        let open_connections = r.gauge("open_connections", "Currently open client connections");
        let layout = r.text("layout", "Encoding layout the served models score with");
        let context_cache_budget_mb =
            r.gauge("context_cache_budget_mb", "Configured context-cache byte budget (MiB)");
        let arms = std::array::from_fn(|arm| ArmObs::register(&r, arm));
        let online = OnlineObs::register(&r);
        let uptime_ms = r.gauge("uptime_ms", "Milliseconds since server start");
        let stages = StageTimers::register(&r);
        ServeMetrics {
            registry: r,
            requests,
            batches,
            mean_batch,
            gave_up,
            cache_hits,
            cache_misses,
            cache_invalidations,
            cache_resident_bytes,
            cache_evictions,
            sessions,
            evicted_sessions,
            snapshot,
            snapshot_version,
            snapshot_params,
            max_batch,
            max_wait_us,
            workers,
            http_workers,
            open_connections,
            layout,
            context_cache_budget_mb,
            arms,
            online,
            uptime_ms,
            stages,
        }
    }

    /// The registry backing both exposition endpoints.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Clones of the per-arm hot handles, for wiring a
    /// [`crate::split::TrafficSplit`] onto the registry.
    pub(crate) fn arm_handles(&self) -> [ArmMetrics; NUM_ARMS] {
        std::array::from_fn(|arm| self.arms[arm].hot.clone())
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_and_flat_visit_share_the_vocabulary() {
        let m = ServeMetrics::new();
        m.requests.add(2);
        m.arms[0].hot.record_request(std::time::Duration::from_micros(80));
        let mut keys = Vec::new();
        m.registry().visit_flat(|name, _| keys.push(name.to_string()));
        // Flat order opens with the scheduler block, exactly as the old
        // hand-written /v1/stats payload did.
        assert_eq!(
            &keys[..7],
            &[
                "requests",
                "batches",
                "mean_batch",
                "gave_up",
                "cache_hits",
                "cache_misses",
                "cache_invalidations"
            ]
        );
        assert_eq!(keys.last().map(String::as_str), Some("uptime_ms"));
        assert!(keys.iter().any(|k| k == "arm1_window_acceptance_rate"));
        // Histograms stay out of the flat view but render in exposition.
        assert!(!keys.iter().any(|k| k.contains("latency_us")));
        let mut text = Vec::new();
        m.registry().render_prometheus(&mut text);
        let text = String::from_utf8(text).unwrap();
        assert!(text.contains("# TYPE irs_arm0_latency_us histogram"), "{text}");
        assert!(
            text.contains(
                "irs_stage_latency_us_count{stage=\"forward\",arm=\"0\",cached=\"hot\"} 0"
            ),
            "{text}"
        );
        assert!(text.contains("irs_arm0_requests 1"), "{text}");
    }

    #[test]
    fn arm_handles_share_state_with_the_registry() {
        let m = ServeMetrics::new();
        let handles = m.arm_handles();
        handles[1].record_feedback(true);
        let mut seen = None;
        m.registry().visit_flat(|name, value| {
            if name == "arm1_accepted" {
                seen = Some(format!("{value:?}"));
            }
        });
        assert_eq!(seen.as_deref(), Some("Int(1)"));
    }
}
