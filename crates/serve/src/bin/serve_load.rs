//! `serve_load` — synthetic traffic generator for the serving subsystem.
//!
//! Trains a tiny IRN on a synthetic dataset, stands up the micro-batching
//! [`Engine`] and replays concurrent interactive sessions against it,
//! reporting throughput and latency percentiles.  `--compare` runs the
//! same traffic against a batch-size-1 scheduler first and prints the
//! micro-batching speedup (the serving analogue of the inference bench's
//! batched-vs-scalar ratio); `IRS_SERVE_ASSERT=1` turns the ≥2x
//! acceptance threshold into a hard failure.
//!
//! ```text
//! cargo run --release -p irs_serve --bin serve_load -- \
//!     [--sessions 32] [--rounds 3] [--steps 8] [--patience 3] \
//!     [--max-batch 16] [--max-wait-us 500] [--workers 2] \
//!     [--scale 0.02] [--epochs 1] [--compare] [--verify]
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use irs_core::{InteractiveSession, Irn, IrnConfig, NeuralTrainConfig};
use irs_data::split::{sample_objectives, split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use irs_serve::{BatchPolicy, Engine, ModelSnapshot, SnapshotRegistry};

struct Opts {
    sessions: usize,
    rounds: usize,
    steps: usize,
    patience: usize,
    max_batch: usize,
    max_wait_us: u64,
    workers: usize,
    scale: f32,
    epochs: usize,
    compare: bool,
    verify: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            sessions: 32,
            rounds: 3,
            steps: 8,
            patience: 3,
            max_batch: 16,
            max_wait_us: 500,
            workers: 2,
            scale: 0.02,
            epochs: 1,
            compare: false,
            verify: false,
        }
    }
}

fn parse_args() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    let take = |args: &[String], i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                opts.sessions =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--sessions: {e}"))?
            }
            "--rounds" => {
                opts.rounds = take(&args, &mut i)?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--steps" => {
                opts.steps = take(&args, &mut i)?.parse().map_err(|e| format!("--steps: {e}"))?
            }
            "--patience" => {
                opts.patience =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--patience: {e}"))?
            }
            "--max-batch" => {
                opts.max_batch =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--max-batch: {e}"))?
            }
            "--max-wait-us" => {
                opts.max_wait_us =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--max-wait-us: {e}"))?
            }
            "--workers" => {
                opts.workers =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--scale" => {
                opts.scale = take(&args, &mut i)?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--epochs" => {
                opts.epochs = take(&args, &mut i)?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--compare" => opts.compare = true,
            "--verify" => opts.verify = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

/// One replayable session script: who asks, from which history, for what
/// (one sampled objective per round so repeated sessions do not
/// degenerate into a single cached query).
#[derive(Clone)]
struct Script {
    user: usize,
    history: Vec<ItemId>,
    objectives: Vec<ItemId>,
}

/// Latency/throughput report of one load run.
struct LoadReport {
    requests: usize,
    wall: Duration,
    latencies_us: Vec<u64>,
    mean_batch: f64,
}

impl LoadReport {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[rank]
    }

    fn print(&self, label: &str) {
        println!(
            "{label}: {} requests in {:.2?}  ({:.0} req/s, mean batch {:.2})",
            self.requests,
            self.wall,
            self.throughput(),
            self.mean_batch
        );
        println!(
            "{label}: latency p50 {} µs, p95 {} µs, p99 {} µs",
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99)
        );
    }
}

/// How a load run scores its requests.
enum Mode {
    /// The batch-size-1 configuration: every proposal is an individual
    /// scalar `next_item` call on the session's thread — the pre-serving
    /// hot path, no queue, no batching engine.
    Scalar,
    /// Requests travel through the micro-batching [`Engine`] under the
    /// given policy (`max_batch: 1` isolates the engine's batched infer
    /// path from the coalescing win).
    Engine(BatchPolicy),
}

/// Replay `opts.sessions` concurrent session threads (each running
/// `opts.rounds` sessions to completion with a passive user).
fn run_load(
    registry: &Arc<SnapshotRegistry>,
    mode: Mode,
    scripts: &[Script],
    opts: &Opts,
) -> LoadReport {
    let engine = match mode {
        Mode::Scalar => None,
        Mode::Engine(policy) => Some(Arc::new(Engine::start(registry.clone(), policy))),
    };
    let snapshot = registry.current();
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut requests = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for script in scripts {
            let engine = engine.clone();
            let snapshot = &snapshot;
            handles.push(scope.spawn(move || {
                let mut lats = Vec::new();
                for round in 0..opts.rounds {
                    let objective = script.objectives[round % script.objectives.len()];
                    let mut session = InteractiveSession::new(
                        script.user,
                        script.history.clone(),
                        objective,
                        opts.steps,
                        opts.patience,
                    );
                    while !session.is_done() {
                        let t0 = Instant::now();
                        let answer = match &engine {
                            Some(engine) => engine.propose(&session),
                            None => {
                                let q = session.query();
                                snapshot.model.next_item(q.user, q.history, q.objective, q.path)
                            }
                        };
                        lats.push(t0.elapsed().as_micros() as u64);
                        match answer {
                            Some(item) => session.record(item, true),
                            None => session.record_give_up(),
                        }
                    }
                }
                lats
            }));
        }
        for h in handles {
            let lats = h.join().expect("session thread panicked");
            requests += lats.len();
            latencies_us.extend(lats);
        }
    });
    let wall = started.elapsed();
    let mean_batch = match &engine {
        Some(engine) => {
            let stats = engine.stats();
            engine.shutdown();
            stats.mean_batch()
        }
        None => 1.0,
    };
    latencies_us.sort_unstable();
    LoadReport { requests, wall, latencies_us, mean_batch }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: serve_load [--sessions N] [--rounds R] [--steps S] [--patience P] \
                 [--max-batch B] [--max-wait-us U] [--workers W] [--scale S] [--epochs E] \
                 [--compare] [--verify]"
            );
            return ExitCode::from(2);
        }
    };
    // Same guard as `irs serve`: usage error, not an Engine::start panic.
    if opts.max_batch == 0 || opts.workers == 0 || opts.sessions == 0 {
        eprintln!("error: --max-batch, --workers and --sessions must be >= 1");
        return ExitCode::from(2);
    }

    // Tiny self-contained world: synthetic dataset, one-epoch IRN.
    eprintln!("serve_load: building synthetic dataset (scale {})...", opts.scale);
    let dataset = generate(&SynthConfig::movielens_like(opts.scale)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let objectives = sample_objectives(&dataset, &split.test, 5, 0x10ad);
    let train = NeuralTrainConfig { epochs: opts.epochs, ..Default::default() };
    let config = IrnConfig {
        dim: 16,
        user_dim: 8,
        layers: 2,
        heads: 2,
        max_len: 16,
        train,
        ..Default::default()
    };
    eprintln!(
        "serve_load: training IRN ({} items, {} users, {} train subsequences)...",
        dataset.num_items,
        dataset.num_users,
        split.train.len()
    );
    let model =
        Irn::fit(&split.train, &split.val, dataset.num_items, dataset.num_users, &config, None);

    // Session scripts cycle over the test users; each session thread
    // rotates through the sampled objectives round by round.
    let scripts: Vec<Script> = (0..opts.sessions)
        .map(|s| {
            let tc = &split.test[s % split.test.len()];
            let objs =
                (0..opts.rounds.max(1)).map(|r| objectives[(s + r) % objectives.len()]).collect();
            Script { user: tc.user, history: tc.history.clone(), objectives: objs }
        })
        .collect();

    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "serve_load",
        Box::new(model),
        dataset.num_items,
    )));

    // Untimed warm-up: the model's persistent PIM cache (base mask +
    // per-user r_u) is populated on first use, and whichever timed run
    // goes first would otherwise be charged for it.
    {
        let snap = registry.current();
        for script in &scripts {
            let _ = snap.model.next_item(script.user, &script.history, script.objectives[0], &[]);
        }
    }

    let batched_policy = BatchPolicy {
        max_batch: opts.max_batch,
        max_wait: Duration::from_micros(opts.max_wait_us),
        workers: opts.workers,
        queue_capacity: 1024,
    };

    let mut speedup = None;
    if opts.compare {
        // Three configurations, most naive first:
        //   scalar   — batch-size-1: every proposal is an individual
        //              scalar next_item call (no engine, no batching);
        //   engine1  — the scheduler with max_batch 1 (isolates the
        //              engine's tape-free batched infer path);
        //   batched  — the full micro-batching scheduler.
        eprintln!(
            "serve_load: batch-size-1 baseline ({} sessions, scalar next_item per request)...",
            opts.sessions
        );
        let scalar = run_load(&registry, Mode::Scalar, &scripts, &opts);
        scalar.print("scalar  ");
        eprintln!(
            "serve_load: engine without coalescing (max_batch 1, {} workers)...",
            opts.workers
        );
        let engine1 = run_load(
            &registry,
            Mode::Engine(BatchPolicy { max_batch: 1, ..batched_policy.clone() }),
            &scripts,
            &opts,
        );
        engine1.print("engine1 ");
        eprintln!(
            "serve_load: micro-batched run (max_batch {}, wait {} µs)...",
            opts.max_batch, opts.max_wait_us
        );
        let batched = run_load(&registry, Mode::Engine(batched_policy.clone()), &scripts, &opts);
        batched.print("batched ");
        let s = batched.throughput() / scalar.throughput().max(1e-9);
        println!(
            "speedup: {s:.2}x micro-batched over batch-size-1 ({:.2}x over the max_batch-1 engine)",
            batched.throughput() / engine1.throughput().max(1e-9)
        );
        speedup = Some(s);
    } else {
        let report = run_load(&registry, Mode::Engine(batched_policy.clone()), &scripts, &opts);
        report.print("serve   ");
    }

    if opts.verify {
        // Scheduler answers must equal direct scalar next_item calls.
        let engine = Engine::start(registry.clone(), batched_policy);
        let snap = registry.current();
        for script in scripts.iter().take(8) {
            let objective = script.objectives[0];
            let got = engine.next_item(script.user, script.history.clone(), objective, Vec::new());
            let want = snap.model.next_item(script.user, &script.history, objective, &[]);
            assert_eq!(got, want, "scheduler diverged from scalar for user {}", script.user);
        }
        engine.shutdown();
        println!("verify: scheduler answers match scalar next_item calls");
    }

    if std::env::var("IRS_SERVE_ASSERT").as_deref() == Ok("1") {
        let Some(s) = speedup else {
            eprintln!("IRS_SERVE_ASSERT requires --compare");
            return ExitCode::FAILURE;
        };
        if s < 2.0 {
            eprintln!("FAIL: micro-batching speedup {s:.2}x below the 2x acceptance threshold");
            return ExitCode::FAILURE;
        }
        println!("ok: micro-batching speedup {s:.2}x ≥ 2x");
    }
    ExitCode::SUCCESS
}
