//! `serve_load` — synthetic traffic generator for the serving subsystem.
//!
//! Trains a tiny IRN on a synthetic dataset, stands up the micro-batching
//! [`Engine`] and replays concurrent interactive sessions against it,
//! reporting throughput and latency percentiles.  `--compare` runs the
//! same traffic against a batch-size-1 scheduler first and prints the
//! micro-batching speedup (the serving analogue of the inference bench's
//! batched-vs-scalar ratio); `IRS_SERVE_ASSERT=1` turns the ≥2x
//! acceptance threshold into a hard failure.
//!
//! `--keep-alive` instead boots the full HTTP frontend in-process and
//! drives the same session traffic over real sockets twice — once
//! opening a fresh connection per request (`Connection: close`), once
//! reusing one keep-alive connection per client — and reports the
//! connection-reuse win (throughput + p50/p95/p99).  With
//! `IRS_SERVE_ASSERT=1` the ≥1.3x keep-alive threshold is enforced.
//!
//! ```text
//! cargo run --release -p irs_serve --bin serve_load -- \
//!     [--sessions 32] [--rounds 3] [--steps 8] [--patience 3] \
//!     [--max-batch 16] [--max-wait-us 500] [--workers 2] \
//!     [--http-workers 0] [--scale 0.02] [--epochs 1] \
//!     [--compare] [--keep-alive] [--verify] \
//!     [--log-level error|warn|info|debug|trace] [--log-format text|json]
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use irs_core::{InteractiveSession, Irn, IrnConfig, NeuralTrainConfig};
use irs_data::split::{sample_objectives, split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use irs_obs::log::{Format, Level};
use irs_obs::{log_error, log_info};
use irs_serve::{
    BatchPolicy, Engine, HttpServer, JsonValue, ModelSnapshot, ServerConfig, SnapshotRegistry,
};

struct Opts {
    sessions: usize,
    rounds: usize,
    steps: usize,
    patience: usize,
    max_batch: usize,
    max_wait_us: u64,
    workers: usize,
    scale: f32,
    epochs: usize,
    compare: bool,
    keep_alive: bool,
    http_workers: usize,
    verify: bool,
    log_level: Level,
    log_format: Format,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            sessions: 32,
            rounds: 3,
            steps: 8,
            patience: 3,
            max_batch: 16,
            max_wait_us: 500,
            workers: 2,
            scale: 0.02,
            epochs: 1,
            compare: false,
            keep_alive: false,
            http_workers: 0,
            verify: false,
            log_level: Level::Info,
            log_format: Format::Text,
        }
    }
}

fn parse_args() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    let take = |args: &[String], i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                opts.sessions =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--sessions: {e}"))?
            }
            "--rounds" => {
                opts.rounds = take(&args, &mut i)?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--steps" => {
                opts.steps = take(&args, &mut i)?.parse().map_err(|e| format!("--steps: {e}"))?
            }
            "--patience" => {
                opts.patience =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--patience: {e}"))?
            }
            "--max-batch" => {
                opts.max_batch =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--max-batch: {e}"))?
            }
            "--max-wait-us" => {
                opts.max_wait_us =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--max-wait-us: {e}"))?
            }
            "--workers" => {
                opts.workers =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--scale" => {
                opts.scale = take(&args, &mut i)?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--epochs" => {
                opts.epochs = take(&args, &mut i)?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--compare" => opts.compare = true,
            "--keep-alive" => opts.keep_alive = true,
            "--http-workers" => {
                opts.http_workers =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--http-workers: {e}"))?
            }
            "--verify" => opts.verify = true,
            "--log-level" => {
                let v = take(&args, &mut i)?;
                opts.log_level =
                    Level::parse(&v).ok_or_else(|| format!("unknown log level '{v}'"))?;
            }
            "--log-format" => {
                let v = take(&args, &mut i)?;
                opts.log_format =
                    Format::parse(&v).ok_or_else(|| format!("unknown log format '{v}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

/// One replayable session script: who asks, from which history, for what
/// (one sampled objective per round so repeated sessions do not
/// degenerate into a single cached query).
#[derive(Clone)]
struct Script {
    user: usize,
    history: Vec<ItemId>,
    objectives: Vec<ItemId>,
}

/// Latency/throughput report of one load run.
struct LoadReport {
    requests: usize,
    wall: Duration,
    latencies_us: Vec<u64>,
    mean_batch: f64,
}

impl LoadReport {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[rank]
    }

    fn print(&self, label: &str) {
        println!(
            "{label}: {} requests in {:.2?}  ({:.0} req/s, mean batch {:.2})",
            self.requests,
            self.wall,
            self.throughput(),
            self.mean_batch
        );
        println!(
            "{label}: latency p50 {} µs, p95 {} µs, p99 {} µs",
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99)
        );
    }
}

/// How a load run scores its requests.
enum Mode {
    /// The batch-size-1 configuration: every proposal is an individual
    /// scalar `next_item` call on the session's thread — the pre-serving
    /// hot path, no queue, no batching engine.
    Scalar,
    /// Requests travel through the micro-batching [`Engine`] under the
    /// given policy (`max_batch: 1` isolates the engine's batched infer
    /// path from the coalescing win).
    Engine(BatchPolicy),
}

/// Replay `opts.sessions` concurrent session threads (each running
/// `opts.rounds` sessions to completion with a passive user).
fn run_load(
    registry: &Arc<SnapshotRegistry>,
    mode: Mode,
    scripts: &[Script],
    opts: &Opts,
) -> LoadReport {
    let engine = match mode {
        Mode::Scalar => None,
        Mode::Engine(policy) => Some(Arc::new(Engine::start(registry.clone(), policy))),
    };
    let snapshot = registry.current();
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut requests = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for script in scripts {
            let engine = engine.clone();
            let snapshot = &snapshot;
            handles.push(scope.spawn(move || {
                let mut lats = Vec::new();
                for round in 0..opts.rounds {
                    let objective = script.objectives[round % script.objectives.len()];
                    let mut session = InteractiveSession::new(
                        script.user,
                        script.history.clone(),
                        objective,
                        opts.steps,
                        opts.patience,
                    );
                    while !session.is_done() {
                        let t0 = Instant::now();
                        let answer = match &engine {
                            Some(engine) => engine.propose(&session),
                            None => {
                                let q = session.query();
                                snapshot.model.next_item(q.user, q.history, q.objective, q.path)
                            }
                        };
                        lats.push(t0.elapsed().as_micros() as u64);
                        match answer {
                            Some(item) => session.record(item, true),
                            None => session.record_give_up(),
                        }
                    }
                }
                lats
            }));
        }
        for h in handles {
            let lats = h.join().expect("session thread panicked");
            requests += lats.len();
            latencies_us.extend(lats);
        }
    });
    let wall = started.elapsed();
    let mean_batch = match &engine {
        Some(engine) => {
            let stats = engine.stats();
            engine.shutdown();
            stats.mean_batch()
        }
        None => 1.0,
    };
    latencies_us.sort_unstable();
    LoadReport { requests, wall, latencies_us, mean_batch }
}

/// Minimal blocking HTTP/1.1 client for the socket-level load modes.
///
/// In keep-alive mode one connection is opened lazily and reused for
/// every request; in close mode each request connects fresh and sends
/// `Connection: close` — exactly the two behaviours whose throughput
/// the `--keep-alive` run compares.
struct HttpClient {
    addr: SocketAddr,
    keep_alive: bool,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl HttpClient {
    fn new(addr: SocketAddr, keep_alive: bool) -> Self {
        HttpClient { addr, keep_alive, stream: None, buf: Vec::new() }
    }

    /// One request/response round trip; returns (status, parsed body).
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
        let mut stream = match self.stream.take() {
            Some(s) => s,
            None => {
                let s = TcpStream::connect(self.addr).expect("connect");
                s.set_nodelay(true).expect("nodelay");
                s.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
                s
            }
        };
        let connection = if self.keep_alive { "keep-alive" } else { "close" };
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
             Connection: {connection}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        self.buf.clear();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "server closed before the response head completed");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).expect("non-UTF-8 response head");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line: {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
            })
            .and_then(|v| v.parse().ok())
            .expect("every response must carry Content-Length");
        while self.buf.len() < head_end + content_length {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let payload =
            std::str::from_utf8(&self.buf[head_end..head_end + content_length]).expect("body");
        let json =
            JsonValue::parse(payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
        if self.keep_alive {
            self.stream = Some(stream);
        }
        (status, json)
    }
}

/// Drive one scripted session over HTTP to completion:
/// create → (next → feedback-accept)* → delete.  Returns per-request
/// latencies (µs) appended to `lats`.
fn drive_http_session(
    client: &mut HttpClient,
    script: &Script,
    objective: ItemId,
    lats: &mut Vec<u64>,
) {
    let history: Vec<String> = script.history.iter().map(ToString::to_string).collect();
    let body = format!(
        "{{\"user\": {}, \"history\": [{}], \"objective\": {objective}}}",
        script.user,
        history.join(",")
    );
    let t0 = Instant::now();
    let (status, created) = client.request("POST", "/v1/session", &body);
    lats.push(t0.elapsed().as_micros() as u64);
    assert_eq!(status, 200, "create failed: {created}");
    let sid = created.get("session_id").and_then(JsonValue::as_usize).expect("session id");
    loop {
        let t0 = Instant::now();
        let (status, next) = client.request("POST", &format!("/v1/session/{sid}/next"), "");
        lats.push(t0.elapsed().as_micros() as u64);
        assert_eq!(status, 200, "next failed: {next}");
        if next.get("done").and_then(JsonValue::as_bool) == Some(true) {
            break;
        }
        let item = next.get("item").and_then(JsonValue::as_usize).expect("item");
        let t0 = Instant::now();
        let (status, fb) = client.request(
            "POST",
            &format!("/v1/session/{sid}/feedback"),
            &format!("{{\"item\": {item}, \"accepted\": true}}"),
        );
        lats.push(t0.elapsed().as_micros() as u64);
        assert_eq!(status, 200, "feedback failed: {fb}");
        if fb.get("done").and_then(JsonValue::as_bool) == Some(true) {
            break;
        }
    }
    let t0 = Instant::now();
    let (status, _) = client.request("DELETE", &format!("/v1/session/{sid}"), "");
    lats.push(t0.elapsed().as_micros() as u64);
    assert_eq!(status, 200, "delete failed");
}

/// Replay the session scripts over real sockets against the in-process
/// HTTP frontend, one client thread per script.  `keep_alive: false`
/// reconnects for every single request (`Connection: close`);
/// `keep_alive: true` reuses one connection per client for its whole
/// traffic.
fn run_http_load(
    addr: SocketAddr,
    scripts: &[Script],
    opts: &Opts,
    keep_alive: bool,
) -> LoadReport {
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut requests = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for script in scripts {
            handles.push(scope.spawn(move || {
                let mut client = HttpClient::new(addr, keep_alive);
                let mut lats = Vec::new();
                for round in 0..opts.rounds {
                    let objective = script.objectives[round % script.objectives.len()];
                    drive_http_session(&mut client, script, objective, &mut lats);
                }
                lats
            }));
        }
        for h in handles {
            let lats = h.join().expect("http client thread panicked");
            requests += lats.len();
            latencies_us.extend(lats);
        }
    });
    let wall = started.elapsed();
    // The engine's mean batch over the whole server lifetime so far — a
    // cumulative figure shared by both runs, reported for context only.
    let (_, stats) = HttpClient::new(addr, false).request("GET", "/v1/stats", "");
    let mean_batch = stats.get("mean_batch").and_then(JsonValue::as_f64).unwrap_or(0.0);
    latencies_us.sort_unstable();
    LoadReport { requests, wall, latencies_us, mean_batch }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: serve_load [--sessions N] [--rounds R] [--steps S] [--patience P] \
                 [--max-batch B] [--max-wait-us U] [--workers W] [--http-workers N] \
                 [--scale S] [--epochs E] [--compare] [--keep-alive] [--verify] \
                 [--log-level L] [--log-format text|json]"
            );
            return ExitCode::from(2);
        }
    };
    irs_obs::log::set_level(opts.log_level);
    irs_obs::log::set_format(opts.log_format);
    // Same guard as `irs serve`: usage error, not an Engine::start panic.
    if opts.max_batch == 0 || opts.workers == 0 || opts.sessions == 0 {
        eprintln!("error: --max-batch, --workers and --sessions must be >= 1");
        return ExitCode::from(2);
    }

    // Tiny self-contained world: synthetic dataset, one-epoch IRN.
    log_info!("serve_load", "building synthetic dataset (scale {})...", opts.scale);
    let dataset = generate(&SynthConfig::movielens_like(opts.scale)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    let objectives = sample_objectives(&dataset, &split.test, 5, 0x10ad);
    let train = NeuralTrainConfig { epochs: opts.epochs, ..Default::default() };
    let config = IrnConfig {
        dim: 16,
        user_dim: 8,
        layers: 2,
        heads: 2,
        max_len: 16,
        train,
        ..Default::default()
    };
    log_info!(
        "serve_load",
        "training IRN ({} items, {} users, {} train subsequences)...",
        dataset.num_items,
        dataset.num_users,
        split.train.len()
    );
    let model =
        Irn::fit(&split.train, &split.val, dataset.num_items, dataset.num_users, &config, None);

    // Session scripts cycle over the test users; each session thread
    // rotates through the sampled objectives round by round.
    let scripts: Vec<Script> = (0..opts.sessions)
        .map(|s| {
            let tc = &split.test[s % split.test.len()];
            let objs =
                (0..opts.rounds.max(1)).map(|r| objectives[(s + r) % objectives.len()]).collect();
            Script { user: tc.user, history: tc.history.clone(), objectives: objs }
        })
        .collect();

    let registry = Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory_with_catalogue(
        "serve_load",
        Box::new(model),
        dataset.num_items,
    )));

    // Untimed warm-up: the model's persistent PIM cache (base mask +
    // per-user r_u) is populated on first use, and whichever timed run
    // goes first would otherwise be charged for it.
    {
        let snap = registry.current();
        for script in &scripts {
            let _ = snap.model.next_item(script.user, &script.history, script.objectives[0], &[]);
        }
    }

    let batched_policy = BatchPolicy {
        max_batch: opts.max_batch,
        max_wait: Duration::from_micros(opts.max_wait_us),
        workers: opts.workers,
        queue_capacity: 1024,
    };

    let mut speedup = None;
    let mut reuse_win = None;
    if opts.keep_alive {
        // Boot the full HTTP frontend in-process and compare
        // close-per-request traffic with keep-alive connection reuse.
        let engine = Arc::new(Engine::start(registry.clone(), batched_policy.clone()));
        let server = HttpServer::bind(
            "127.0.0.1:0",
            engine.clone(),
            None,
            ServerConfig {
                max_len: opts.steps,
                patience: opts.patience,
                http_workers: opts.http_workers,
                ..Default::default()
            },
        )
        .expect("bind HTTP frontend");
        let addr = server.local_addr().expect("local addr");
        let server_thread = std::thread::spawn(move || server.run());
        // Untimed warm-up of the HTTP path itself (worker workspaces,
        // connection buffers) so neither timed run pays first-use costs.
        {
            let mut client = HttpClient::new(addr, true);
            let mut lats = Vec::new();
            drive_http_session(&mut client, &scripts[0], scripts[0].objectives[0], &mut lats);
        }
        log_info!(
            "serve_load",
            "HTTP close-per-request run ({} clients, fresh connection each request)...",
            opts.sessions
        );
        let close = run_http_load(addr, &scripts, &opts, false);
        close.print("http-close");
        log_info!(
            "serve_load",
            "HTTP keep-alive run ({} clients, one reused connection each)...",
            opts.sessions
        );
        let keep = run_http_load(addr, &scripts, &opts, true);
        keep.print("http-keep ");
        let ratio = keep.throughput() / close.throughput().max(1e-9);
        println!("keep-alive win: {ratio:.2}x throughput over close-per-request");
        reuse_win = Some(ratio);
        let (status, _) = HttpClient::new(addr, false).request("POST", "/v1/admin/shutdown", "");
        assert_eq!(status, 200, "shutdown failed");
        server_thread.join().expect("server thread").expect("server run");
        engine.shutdown();
    } else if opts.compare {
        // Three configurations, most naive first:
        //   scalar   — batch-size-1: every proposal is an individual
        //              scalar next_item call (no engine, no batching);
        //   engine1  — the scheduler with max_batch 1 (isolates the
        //              engine's tape-free batched infer path);
        //   batched  — the full micro-batching scheduler.
        log_info!(
            "serve_load",
            "batch-size-1 baseline ({} sessions, scalar next_item per request)...",
            opts.sessions
        );
        let scalar = run_load(&registry, Mode::Scalar, &scripts, &opts);
        scalar.print("scalar  ");
        log_info!(
            "serve_load",
            "engine without coalescing (max_batch 1, {} workers)...",
            opts.workers
        );
        let engine1 = run_load(
            &registry,
            Mode::Engine(BatchPolicy { max_batch: 1, ..batched_policy.clone() }),
            &scripts,
            &opts,
        );
        engine1.print("engine1 ");
        log_info!(
            "serve_load",
            "micro-batched run (max_batch {}, wait {} µs)...",
            opts.max_batch,
            opts.max_wait_us
        );
        let batched = run_load(&registry, Mode::Engine(batched_policy.clone()), &scripts, &opts);
        batched.print("batched ");
        let s = batched.throughput() / scalar.throughput().max(1e-9);
        println!(
            "speedup: {s:.2}x micro-batched over batch-size-1 ({:.2}x over the max_batch-1 engine)",
            batched.throughput() / engine1.throughput().max(1e-9)
        );
        speedup = Some(s);
    } else {
        let report = run_load(&registry, Mode::Engine(batched_policy.clone()), &scripts, &opts);
        report.print("serve   ");
    }

    if opts.verify {
        // Scheduler answers must equal direct scalar next_item calls.
        let engine = Engine::start(registry.clone(), batched_policy);
        let snap = registry.current();
        for script in scripts.iter().take(8) {
            let objective = script.objectives[0];
            let got = engine.next_item(script.user, script.history.clone(), objective, Vec::new());
            let want = snap.model.next_item(script.user, &script.history, objective, &[]);
            assert_eq!(got, want, "scheduler diverged from scalar for user {}", script.user);
        }
        engine.shutdown();
        println!("verify: scheduler answers match scalar next_item calls");
    }

    if std::env::var("IRS_SERVE_ASSERT").as_deref() == Ok("1") {
        if let Some(r) = reuse_win {
            if r < 1.3 {
                log_error!(
                    "serve_load",
                    "FAIL: keep-alive win {r:.2}x below the 1.3x acceptance threshold"
                );
                return ExitCode::FAILURE;
            }
            println!("ok: keep-alive win {r:.2}x ≥ 1.3x");
        } else {
            let Some(s) = speedup else {
                log_error!("serve_load", "IRS_SERVE_ASSERT requires --compare or --keep-alive");
                return ExitCode::FAILURE;
            };
            if s < 2.0 {
                log_error!(
                    "serve_load",
                    "FAIL: micro-batching speedup {s:.2}x below the 2x acceptance threshold"
                );
                return ExitCode::FAILURE;
            }
            println!("ok: micro-batching speedup {s:.2}x ≥ 2x");
        }
    }
    ExitCode::SUCCESS
}
