//! The keep-alive worker pool and its readiness poller.
//!
//! Replaces thread-per-connection with a fixed topology:
//!
//! ```text
//!   accept loop ──▶ ready queue ──▶ worker pool (N threads, each with a
//!        ▲              ▲               reusable RequestWorkspace)
//!        │              │ promote            │ idle / awaiting bytes
//!        │              └── poller ◀─────────┘
//!        └──────────────────(watches idle connections, enforces the
//!                            idle timeout, finishes partial writes)
//! ```
//!
//! Connections move by value between the three stations, so each one has
//! exactly one owner at any time and no per-connection locking exists.
//! Workers only ever operate on connections with buffered input (they
//! never block on a socket read), so a stalled client cannot pin a
//! worker; between requests a connection parks with the *poller*, a
//! single thread that watches every idle connection with non-blocking
//! reads — 10k idle sessions cost 10k parked sockets, not 10k threads.
//!
//! The poller has no `epoll` (std-only constraint), so it sweeps its
//! watch set with adaptive pacing: ~0.1 ms naps while any watched
//! connection was recently active, backing off to ~10 ms when everything
//! is quiet.  Promotion latency is therefore ≤0.1 ms under load and the
//! idle server costs a few empty sweeps per second.
//!
//! Shutdown is two-phase: workers first drain the ready queue (every
//! accepted request gets its response), then the poller flushes what it
//! can for ~250 ms and drops the rest.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::conn::{Conn, FillState, ParseStatus};
use crate::http::ServerState;
use crate::workspace::RequestWorkspace;

/// Most pipelined requests served per worker turn before the connection
/// re-queues behind others (fairness under aggressive pipelining).
const PIPELINE_CAP: usize = 64;
/// Poller nap while connections are active.
const HOT_NAP: Duration = Duration::from_micros(100);
/// Backoff cap while watched connections are recent but sweeps come up
/// empty (bounds promotion latency during request/response lulls).
const WARM_NAP: Duration = Duration::from_millis(1);
/// Poller nap once everything has gone quiet.
const COLD_NAP: Duration = Duration::from_millis(10);
/// A connection counts as recently active (keeps the poller hot) for
/// this long after its last byte moved.
const RECENT: Duration = Duration::from_millis(500);

/// Queues shared between the accept loop, the workers and the poller.
pub(crate) struct Shared {
    ready: Mutex<VecDeque<Conn>>,
    ready_cv: Condvar,
    inbox: Mutex<Vec<Conn>>,
    inbox_cv: Condvar,
    /// Phase 1: workers finish the ready queue and exit.
    draining: AtomicBool,
    /// Phase 2: the poller flushes and exits.
    poller_stop: AtomicBool,
}

impl Shared {
    pub fn new() -> Self {
        Shared {
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            inbox: Mutex::new(Vec::new()),
            inbox_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            poller_stop: AtomicBool::new(false),
        }
    }

    /// Hand a connection with (probable) work to the worker pool.
    pub fn push_ready(&self, conn: Conn) {
        self.ready.lock().expect("ready queue poisoned").push_back(conn);
        self.ready_cv.notify_one();
    }

    /// Park a connection with the poller until bytes arrive for it.
    fn send_to_poller(&self, conn: Conn) {
        self.inbox.lock().expect("poller inbox poisoned").push(conn);
        self.inbox_cv.notify_one();
    }

    fn pop_ready(&self) -> Option<Conn> {
        let mut q = self.ready.lock().expect("ready queue poisoned");
        loop {
            if let Some(c) = q.pop_front() {
                return Some(c);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            q = self.ready_cv.wait(q).expect("ready queue poisoned");
        }
    }

    /// Phase 1: stop the workers once the ready queue is drained.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.ready_cv.notify_all();
    }

    /// Phase 2 (after the workers are joined): stop the poller.
    pub fn stop_poller(&self) {
        self.poller_stop.store(true, Ordering::SeqCst);
        self.inbox_cv.notify_all();
    }
}

/// Where a connection goes after a worker turn.
enum Disposition {
    Close,
    Ready,
    Poller,
}

/// Spawn the HTTP worker pool.
pub(crate) fn spawn_workers(
    shared: &Arc<Shared>,
    state: &Arc<ServerState>,
    addr: SocketAddr,
    count: usize,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|_| {
            let shared = shared.clone();
            let state = state.clone();
            std::thread::spawn(move || worker_loop(&shared, &state, addr))
        })
        .collect()
}

fn worker_loop(shared: &Arc<Shared>, state: &Arc<ServerState>, addr: SocketAddr) {
    let mut ws = RequestWorkspace::new();
    while let Some(mut conn) = shared.pop_ready() {
        match serve_turn(state, addr, &mut conn, &mut ws) {
            Disposition::Close => drop(conn),
            Disposition::Ready => shared.push_ready(conn),
            Disposition::Poller => {
                if shared.draining.load(Ordering::SeqCst) {
                    // The poller is about to stop; give this connection's
                    // staged bytes a brief inline chance instead.
                    linger_flush(&mut conn, Duration::from_millis(100));
                } else {
                    shared.send_to_poller(conn);
                }
            }
        }
    }
}

/// Serve every complete request currently buffered on `conn` (up to the
/// pipelining cap), stage the responses, flush what the socket accepts,
/// and decide where the connection goes next.
fn serve_turn(
    state: &Arc<ServerState>,
    addr: SocketAddr,
    conn: &mut Conn,
    ws: &mut RequestWorkspace,
) -> Disposition {
    // The poller (or a previous turn) usually promoted this connection
    // *because* request bytes are already buffered — skip the extra
    // syscall and only read when parsing runs dry.
    if !conn.has_buffered_input() && conn.fill() == FillState::Dead {
        return Disposition::Close;
    }
    let mut served = 0;
    let mut need_more = false;
    while served < PIPELINE_CAP && !conn.close_after_flush {
        match conn.try_parse() {
            ParseStatus::NeedMore => {
                // Top up: more bytes may have landed while earlier
                // requests in this turn were served.  A dry read ends
                // the turn; fresh bytes re-enter the parse loop.
                let before = conn.buf.len();
                if conn.fill() == FillState::Dead {
                    return Disposition::Close;
                }
                if conn.buf.len() == before {
                    need_more = true;
                    break;
                }
            }
            ParseStatus::Bad(status, msg) => {
                // The framing is unrecoverable; answer and close.
                crate::http::write_error_response(&mut conn.out, &mut ws.body, status, msg);
                conn.close_after_flush = true;
            }
            ParseStatus::Complete(spans) => {
                served += 1;
                conn.parsed = spans.end;
                crate::http::handle_parsed(state, addr, ws, &conn.buf, &spans, &mut conn.out);
                if !spans.keep_alive {
                    conn.close_after_flush = true;
                }
            }
        }
    }
    conn.compact();
    // Record where parsing stalled (a partial request with a dry socket)
    // so the poller promotes this connection only once new bytes arrive,
    // rather than bouncing the same half-request back to a worker.
    conn.parse_stalled_at = if need_more { Some(conn.buf.len()) } else { None };
    let flushed = match conn.flush_out() {
        Ok(done) => done,
        Err(_) => return Disposition::Close,
    };
    if conn.eof && (need_more || !conn.has_buffered_input()) {
        // The peer can't send anything further we could serve: a partial
        // trailing request is dropped, a clean half-close just ends the
        // connection once staged output is out the door.
        conn.close_after_flush = true;
        return if flushed { Disposition::Close } else { Disposition::Poller };
    }
    if !flushed {
        // The poller finishes the write when the socket drains.
        return Disposition::Poller;
    }
    if conn.close_after_flush {
        Disposition::Close
    } else if conn.has_buffered_input() && !need_more {
        // Pipelining fairness: more complete requests are buffered but
        // the turn cap was hit — requeue behind other ready connections.
        // A partial trailing request (`need_more`) parks with the poller
        // instead: requeueing it would spin it through the workers at
        // full CPU until the client sends the rest.
        Disposition::Ready
    } else {
        Disposition::Poller
    }
}

/// Best-effort bounded flush for shutdown paths.
fn linger_flush(conn: &mut Conn, budget: Duration) {
    let deadline = Instant::now() + budget;
    while conn.has_pending_out() && Instant::now() < deadline {
        match conn.flush_out() {
            Ok(true) | Err(_) => break,
            Ok(false) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Spawn the readiness poller.
pub(crate) fn spawn_poller(shared: &Arc<Shared>, idle_timeout: Duration) -> JoinHandle<()> {
    let shared = shared.clone();
    std::thread::spawn(move || poller_loop(&shared, idle_timeout))
}

fn poller_loop(shared: &Arc<Shared>, idle_timeout: Duration) {
    let mut watched: Vec<Conn> = Vec::new();
    let mut nap = HOT_NAP;
    loop {
        // Adopt newly parked connections; nap here (the condvar also
        // wakes us for new arrivals and shutdown).
        {
            let mut inbox = shared.inbox.lock().expect("poller inbox poisoned");
            if inbox.is_empty() && !shared.poller_stop.load(Ordering::SeqCst) {
                let (guard, _) =
                    shared.inbox_cv.wait_timeout(inbox, nap).expect("poller inbox poisoned");
                inbox = guard;
            }
            watched.append(&mut inbox);
        }
        if shared.poller_stop.load(Ordering::SeqCst) {
            for mut conn in watched.drain(..) {
                linger_flush(&mut conn, Duration::from_millis(250));
            }
            return;
        }
        let now = Instant::now();
        let mut activity = false;
        let mut i = 0;
        while i < watched.len() {
            let conn = &mut watched[i];
            let mut promote = false;
            let mut close = false;
            if conn.has_pending_out() {
                match conn.flush_out() {
                    Ok(true) => close = conn.close_after_flush,
                    Ok(false) => {}
                    Err(_) => close = true,
                }
            }
            if !close && conn.close_after_flush && !conn.has_pending_out() {
                close = true;
            }
            if !close && !conn.close_after_flush {
                match conn.fill() {
                    FillState::Dead => close = true,
                    FillState::Eof => {
                        if conn.parse_can_progress() {
                            promote = true; // serve what's buffered, then close
                        } else if conn.has_pending_out() {
                            conn.close_after_flush = true; // keep flushing above
                        } else {
                            // Nothing serveable will ever arrive: either
                            // the buffer is empty or it holds a partial
                            // request the half-closed peer cannot finish.
                            close = true;
                        }
                    }
                    FillState::WouldBlock => {
                        if conn.parse_can_progress() {
                            promote = true;
                        } else if now.duration_since(conn.last_activity) > idle_timeout {
                            // Idle keep-alive session expired — a client
                            // stalled mid-request counts as idle too.
                            close = true;
                        }
                    }
                }
            }
            if close {
                drop(watched.swap_remove(i));
                activity = true;
            } else if promote {
                let conn = watched.swap_remove(i);
                shared.push_ready(conn);
                activity = true;
            } else {
                i += 1;
            }
        }
        // Pacing: a productive sweep snaps back to the hot nap; empty
        // sweeps back off (capped low while conversations are live, so
        // promotion latency stays bounded without burning a syscall per
        // idle connection every 0.1 ms).
        let recently_active = watched.iter().any(|c| now.duration_since(c.last_activity) < RECENT);
        nap = if activity {
            HOT_NAP
        } else if recently_active {
            (nap * 2).min(WARM_NAP)
        } else {
            (nap * 2).min(COLD_NAP)
        };
    }
}
