//! Model snapshot registry with atomic hot-swap.
//!
//! A [`ModelSnapshot`] owns one immutable trained recommender plus its
//! metadata.  For IRN snapshots the model's PIM cache (shared base mask +
//! per-user `r_u`) lives *inside* the model, so every request scheduled
//! against a snapshot shares one cache, and swapping snapshots swaps the
//! cache with the weights — no stale-mask hazard.
//!
//! [`SnapshotRegistry::swap`] publishes a new snapshot atomically: the
//! scheduler grabs `current()` once per micro-batch, so a batch is always
//! scored by exactly one snapshot, and in-flight batches finish on the
//! snapshot they started with (the `Arc` keeps it alive until the last
//! batch drops it).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use irs_core::{InfluenceRecommender, Irn, IrnConfig};
use irs_nn::IrspRecord;
use parking_lot::RwLock;

/// The recommender trait object a snapshot serves.
pub type ServedModel = Box<dyn InfluenceRecommender + Send + Sync>;

/// One immutable model snapshot.
pub struct ModelSnapshot {
    /// Operator-facing label (e.g. the source file name).
    pub label: String,
    /// The served model.
    pub model: ServedModel,
    /// IRSP parameter summary when loaded from a file (empty for
    /// in-memory models).
    pub params: Vec<IrspRecord>,
    /// Catalogue size when known — lets the frontend reject requests with
    /// out-of-catalogue item ids before they reach an embedding lookup.
    pub num_items: Option<usize>,
}

impl ModelSnapshot {
    /// Wrap an in-memory recommender (tests, load generators).
    pub fn in_memory(label: impl Into<String>, model: ServedModel) -> Self {
        ModelSnapshot { label: label.into(), model, params: Vec::new(), num_items: None }
    }

    /// Wrap an in-memory recommender over a known catalogue size.
    pub fn in_memory_with_catalogue(
        label: impl Into<String>,
        model: ServedModel,
        num_items: usize,
    ) -> Self {
        ModelSnapshot { label: label.into(), model, params: Vec::new(), num_items: Some(num_items) }
    }

    /// Total scalar parameter count of the snapshot.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(IrspRecord::numel).sum()
    }
}

/// Everything needed to materialise IRN snapshots from `IRSP` files: the
/// architecture is fixed at server start, and every swap is checked
/// against it (name/shape matching in `ParamStore::load_parameters`), so
/// a mismatched file is rejected instead of served.
#[derive(Clone)]
pub struct IrnArchitecture {
    /// Catalogue size the model was trained for.
    pub num_items: usize,
    /// User count the model was trained for.
    pub num_users: usize,
    /// Model hyperparameters.
    pub config: IrnConfig,
}

impl IrnArchitecture {
    /// Load an `IRSP` file into a fresh model of this architecture.
    pub fn load_snapshot(&self, path: &str) -> io::Result<ModelSnapshot> {
        let bytes = std::fs::read(path)?;
        let params = irs_nn::irsp_summary(&bytes[..])?;
        let model = Irn::load(&bytes[..], self.num_items, self.num_users, &self.config)?;
        Ok(ModelSnapshot {
            label: path.to_string(),
            model: Box::new(model),
            params,
            num_items: Some(self.num_items),
        })
    }
}

/// A function that turns a snapshot path into a loaded [`ModelSnapshot`]
/// (the HTTP frontend's hot-swap hook; [`IrnArchitecture::load_snapshot`]
/// is the standard implementation).
pub type SnapshotLoader = Arc<dyn Fn(&str) -> io::Result<ModelSnapshot> + Send + Sync>;

/// Atomically swappable registry of the currently served snapshot.
pub struct SnapshotRegistry {
    current: RwLock<Arc<ModelSnapshot>>,
    version: AtomicU64,
    swaps: AtomicU64,
}

impl SnapshotRegistry {
    /// Create a registry serving `initial` as version 1.
    pub fn new(initial: ModelSnapshot) -> Self {
        SnapshotRegistry {
            current: RwLock::new(Arc::new(initial)),
            version: AtomicU64::new(1),
            swaps: AtomicU64::new(0),
        }
    }

    /// The currently served snapshot (cheap `Arc` clone under a read
    /// lock; the lock is never held across a forward pass).
    pub fn current(&self) -> Arc<ModelSnapshot> {
        self.current.read().clone()
    }

    /// The current snapshot together with its version, read consistently:
    /// the read lock covers both, and [`SnapshotRegistry::swap`] bumps the
    /// version while still holding the write guard, so the pair can never
    /// mix an old snapshot with a new version.  Per-session context caches
    /// are tagged with this version (their generation) so a hot-swap
    /// invalidates them instead of replaying them against new weights.
    pub fn current_versioned(&self) -> (Arc<ModelSnapshot>, u64) {
        let guard = self.current.read();
        (guard.clone(), self.version.load(Ordering::Relaxed))
    }

    /// Publish a new snapshot; returns the new version number.  The
    /// version bump happens under the write guard, keeping
    /// [`SnapshotRegistry::current_versioned`] consistent.
    pub fn swap(&self, snapshot: ModelSnapshot) -> u64 {
        let slot = &mut *self.current.write();
        *slot = Arc::new(snapshot);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Version of the current snapshot (1 for the initial model, +1 per
    /// swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Number of completed hot-swaps.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_data::{ItemId, UserId};

    struct Fixed(ItemId);
    impl InfluenceRecommender for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            _objective: ItemId,
            _path: &[ItemId],
        ) -> Option<ItemId> {
            Some(self.0)
        }
    }

    #[test]
    fn swap_publishes_atomically_and_bumps_version() {
        let reg = SnapshotRegistry::new(ModelSnapshot::in_memory("v1", Box::new(Fixed(1))));
        assert_eq!(reg.version(), 1);
        let before = reg.current();
        assert_eq!(before.model.next_item(0, &[], 9, &[]), Some(1));

        let v = reg.swap(ModelSnapshot::in_memory("v2", Box::new(Fixed(2))));
        assert_eq!(v, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.swap_count(), 1);
        // The old Arc still answers with the old model (in-flight batches
        // finish on the snapshot they started with).
        assert_eq!(before.model.next_item(0, &[], 9, &[]), Some(1));
        assert_eq!(reg.current().model.next_item(0, &[], 9, &[]), Some(2));
        assert_eq!(reg.current().label, "v2");
    }

    #[test]
    fn irn_architecture_round_trips_and_rejects_mismatch() {
        use irs_data::split::SubSeq;
        let seqs: Vec<SubSeq> = (0..8)
            .map(|s| SubSeq { user: s % 3, items: (0..6).map(|k| (s + k) % 8).collect() })
            .collect();
        let train = irs_core::NeuralTrainConfig { epochs: 1, ..Default::default() };
        let config = IrnConfig {
            dim: 8,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 8,
            train,
            ..Default::default()
        };
        let model = Irn::fit(&seqs, &[], 8, 3, &config, None);
        let dir = std::env::temp_dir().join("irs_serve_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.irsp");
        model.save(std::fs::File::create(&path).unwrap()).unwrap();

        let arch = IrnArchitecture { num_items: 8, num_users: 3, config: config.clone() };
        let snap = arch.load_snapshot(path.to_str().unwrap()).unwrap();
        assert!(!snap.params.is_empty());
        assert!(snap.num_scalars() > 0);
        assert_eq!(
            snap.model.next_item(0, &[0, 1], 5, &[]),
            model.next_item(0, &[0, 1], 5, &[]),
            "loaded snapshot must answer like the original"
        );

        let mut wrong = arch.clone();
        wrong.config.dim = 16;
        assert!(wrong.load_snapshot(path.to_str().unwrap()).is_err());
    }
}
