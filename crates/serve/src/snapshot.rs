//! Model snapshot registry with atomic hot-swap.
//!
//! A [`ModelSnapshot`] owns one immutable trained recommender plus its
//! metadata.  For IRN snapshots the model's PIM cache (shared base mask +
//! per-user `r_u`) lives *inside* the model, so every request scheduled
//! against a snapshot shares one cache, and swapping snapshots swaps the
//! cache with the weights — no stale-mask hazard.
//!
//! [`SnapshotRegistry::swap`] publishes a new snapshot atomically: the
//! scheduler grabs `current()` once per micro-batch, so a batch is always
//! scored by exactly one snapshot, and in-flight batches finish on the
//! snapshot they started with (the `Arc` keeps it alive until the last
//! batch drops it).
//!
//! ## Arms
//!
//! The registry holds [`NUM_ARMS`] independently swappable slots so a
//! server can split traffic between a *stable* model (arm 0, what
//! `current()`/`swap()` have always addressed) and a *canary* (arm
//! [`CANARY_ARM`], where the online trainer publishes).  Versions are
//! allocated from one shared counter, so a version number identifies a
//! unique parameter set across arms — per-session context caches tag
//! their generation with it and stay sound when a session's arm slot is
//! republished or promoted.  [`SnapshotRegistry::promote`] copies the
//! canary's `(snapshot, version)` pair into the stable slot (sharing the
//! `Arc` and the version is exactly right: the weights are identical, so
//! caches minted against the canary stay valid); `rollback` overwrites
//! the canary with the stable slot the same way.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use irs_core::{InfluenceRecommender, Irn, IrnConfig};
use irs_nn::IrspRecord;
use parking_lot::RwLock;

/// The recommender trait object a snapshot serves.
pub type ServedModel = Box<dyn InfluenceRecommender + Send + Sync>;

/// One immutable model snapshot.
pub struct ModelSnapshot {
    /// Operator-facing label (e.g. the source file name).
    pub label: String,
    /// The served model.
    pub model: ServedModel,
    /// IRSP parameter summary when loaded from a file (empty for
    /// in-memory models).
    pub params: Vec<IrspRecord>,
    /// Catalogue size when known — lets the frontend reject requests with
    /// out-of-catalogue item ids before they reach an embedding lookup.
    pub num_items: Option<usize>,
}

impl ModelSnapshot {
    /// Wrap an in-memory recommender (tests, load generators).
    pub fn in_memory(label: impl Into<String>, model: ServedModel) -> Self {
        ModelSnapshot { label: label.into(), model, params: Vec::new(), num_items: None }
    }

    /// Wrap an in-memory recommender over a known catalogue size.
    pub fn in_memory_with_catalogue(
        label: impl Into<String>,
        model: ServedModel,
        num_items: usize,
    ) -> Self {
        ModelSnapshot { label: label.into(), model, params: Vec::new(), num_items: Some(num_items) }
    }

    /// Total scalar parameter count of the snapshot.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(IrspRecord::numel).sum()
    }
}

/// Everything needed to materialise IRN snapshots from `IRSP` files: the
/// architecture is fixed at server start, and every swap is checked
/// against it (name/shape matching in `ParamStore::load_parameters`), so
/// a mismatched file is rejected instead of served.
#[derive(Clone)]
pub struct IrnArchitecture {
    /// Catalogue size the model was trained for.
    pub num_items: usize,
    /// User count the model was trained for.
    pub num_users: usize,
    /// Model hyperparameters.
    pub config: IrnConfig,
}

impl IrnArchitecture {
    /// Load an `IRSP` file into a fresh model of this architecture.
    pub fn load_snapshot(&self, path: &str) -> io::Result<ModelSnapshot> {
        let bytes = std::fs::read(path)?;
        let params = irs_nn::irsp_summary(&bytes[..])?;
        let model = Irn::load(&bytes[..], self.num_items, self.num_users, &self.config)?;
        Ok(ModelSnapshot {
            label: path.to_string(),
            model: Box::new(model),
            params,
            num_items: Some(self.num_items),
        })
    }
}

/// A function that turns a snapshot path into a loaded [`ModelSnapshot`]
/// (the HTTP frontend's hot-swap hook; [`IrnArchitecture::load_snapshot`]
/// is the standard implementation).
pub type SnapshotLoader = Arc<dyn Fn(&str) -> io::Result<ModelSnapshot> + Send + Sync>;

/// Number of traffic arms a registry holds (stable + canary).
pub const NUM_ARMS: usize = 2;

/// The arm the online trainer publishes to.
pub const CANARY_ARM: usize = 1;

/// One arm's consistently-versioned snapshot slot.
struct ArmSlot {
    snapshot: Arc<ModelSnapshot>,
    version: u64,
}

/// Atomically swappable registry of the currently served snapshots, one
/// slot per traffic arm (see module docs).
pub struct SnapshotRegistry {
    arms: [RwLock<ArmSlot>; NUM_ARMS],
    /// Shared allocator: every publish to any arm draws a globally
    /// unique version, so cache generations never collide across arms.
    next_version: AtomicU64,
    swaps: AtomicU64,
}

impl SnapshotRegistry {
    /// Create a registry serving `initial` as version 1 on every arm
    /// (all arms share the one `Arc` until something is published).
    pub fn new(initial: ModelSnapshot) -> Self {
        let shared = Arc::new(initial);
        SnapshotRegistry {
            arms: std::array::from_fn(|_| {
                RwLock::new(ArmSlot { snapshot: shared.clone(), version: 1 })
            }),
            next_version: AtomicU64::new(2),
            swaps: AtomicU64::new(0),
        }
    }

    /// The currently served stable snapshot (cheap `Arc` clone under a
    /// read lock; the lock is never held across a forward pass).
    pub fn current(&self) -> Arc<ModelSnapshot> {
        self.arm(0)
    }

    /// The stable snapshot together with its version (see
    /// [`SnapshotRegistry::arm_versioned`]).
    pub fn current_versioned(&self) -> (Arc<ModelSnapshot>, u64) {
        self.arm_versioned(0)
    }

    /// The snapshot served on `arm` (indices clamp into range so a
    /// corrupt arm id degrades to the stable model, never a panic).
    pub fn arm(&self, arm: usize) -> Arc<ModelSnapshot> {
        self.arms[arm.min(NUM_ARMS - 1)].read().snapshot.clone()
    }

    /// The arm's snapshot together with its version, read consistently:
    /// the read lock covers both, and every publish replaces them under
    /// the write guard, so the pair can never mix an old snapshot with a
    /// new version.  Per-session context caches are tagged with this
    /// version (their generation) so a publish invalidates them instead
    /// of replaying them against new weights.
    pub fn arm_versioned(&self, arm: usize) -> (Arc<ModelSnapshot>, u64) {
        let guard = self.arms[arm.min(NUM_ARMS - 1)].read();
        (guard.snapshot.clone(), guard.version)
    }

    /// Version currently served on `arm`.
    pub fn arm_version(&self, arm: usize) -> u64 {
        self.arms[arm.min(NUM_ARMS - 1)].read().version
    }

    /// Publish a new snapshot to an arm; returns its new (globally
    /// unique) version number.
    pub fn publish(&self, arm: usize, snapshot: ModelSnapshot) -> u64 {
        let slot = &mut *self.arms[arm.min(NUM_ARMS - 1)].write();
        // Allocated under the write guard so versions are monotonic per
        // arm even under concurrent publishes.
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        slot.snapshot = Arc::new(snapshot);
        slot.version = version;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        version
    }

    /// Publish a new snapshot to the stable arm (the historical
    /// single-arm entry point — `POST /v1/admin/swap`); returns the new
    /// version number.
    pub fn swap(&self, snapshot: ModelSnapshot) -> u64 {
        self.publish(0, snapshot)
    }

    /// Promote `arm` to stable: the stable slot takes the winner's
    /// `(snapshot, version)` pair.  Sharing the `Arc` and version is
    /// sound — identical weights mean caches minted on either arm stay
    /// valid.  Returns the promoted version.  A no-op returning the
    /// current stable version when `arm` is already 0.
    pub fn promote(&self, arm: usize) -> u64 {
        let arm = arm.min(NUM_ARMS - 1);
        if arm == 0 {
            return self.arm_version(0);
        }
        // Lock order: stable (0) before canary — promote and rollback
        // both take them in this order, so they cannot deadlock.
        let mut stable = self.arms[0].write();
        let winner = self.arms[arm].read();
        stable.snapshot = winner.snapshot.clone();
        stable.version = winner.version;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        stable.version
    }

    /// Roll the canary back to the stable snapshot (same `(snapshot,
    /// version)` sharing as promote, in the other direction).  Returns
    /// the version now served on the canary.
    pub fn rollback(&self) -> u64 {
        let stable = self.arms[0].write();
        let mut canary = self.arms[CANARY_ARM].write();
        canary.snapshot = stable.snapshot.clone();
        canary.version = stable.version;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        canary.version
    }

    /// Version of the stable snapshot (1 for the initial model, bumped
    /// by every publish anywhere).
    pub fn version(&self) -> u64 {
        self.arm_version(0)
    }

    /// Number of completed publish/promote/rollback operations.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_data::{ItemId, UserId};

    struct Fixed(ItemId);
    impl InfluenceRecommender for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            _objective: ItemId,
            _path: &[ItemId],
        ) -> Option<ItemId> {
            Some(self.0)
        }
    }

    #[test]
    fn swap_publishes_atomically_and_bumps_version() {
        let reg = SnapshotRegistry::new(ModelSnapshot::in_memory("v1", Box::new(Fixed(1))));
        assert_eq!(reg.version(), 1);
        let before = reg.current();
        assert_eq!(before.model.next_item(0, &[], 9, &[]), Some(1));

        let v = reg.swap(ModelSnapshot::in_memory("v2", Box::new(Fixed(2))));
        assert_eq!(v, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.swap_count(), 1);
        // The old Arc still answers with the old model (in-flight batches
        // finish on the snapshot they started with).
        assert_eq!(before.model.next_item(0, &[], 9, &[]), Some(1));
        assert_eq!(reg.current().model.next_item(0, &[], 9, &[]), Some(2));
        assert_eq!(reg.current().label, "v2");
        // The stable swap left the canary untouched.
        assert_eq!(reg.arm(CANARY_ARM).label, "v1");
        assert_eq!(reg.arm_version(CANARY_ARM), 1);
    }

    #[test]
    fn arms_publish_promote_and_roll_back_independently() {
        let reg = SnapshotRegistry::new(ModelSnapshot::in_memory("base", Box::new(Fixed(1))));
        // Both arms start on the shared initial snapshot, version 1.
        assert_eq!(reg.arm_version(0), 1);
        assert_eq!(reg.arm_version(CANARY_ARM), 1);

        let v = reg.publish(CANARY_ARM, ModelSnapshot::in_memory("canary", Box::new(Fixed(7))));
        assert_eq!(v, 2);
        assert_eq!(reg.arm_version(CANARY_ARM), 2);
        assert_eq!(reg.arm_version(0), 1, "stable arm unaffected by a canary publish");
        assert_eq!(reg.arm(CANARY_ARM).model.next_item(0, &[], 9, &[]), Some(7));
        assert_eq!(reg.current().model.next_item(0, &[], 9, &[]), Some(1));

        // Promote: stable takes the canary's (snapshot, version) pair.
        let promoted = reg.promote(CANARY_ARM);
        assert_eq!(promoted, 2);
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.current().label, "canary");
        let (snap0, v0) = reg.arm_versioned(0);
        let (snap1, v1) = reg.arm_versioned(CANARY_ARM);
        assert_eq!(v0, v1, "promote shares the version (identical weights)");
        assert!(Arc::ptr_eq(&snap0, &snap1), "promote shares the Arc");

        // A later canary publish gets a fresh global version…
        let v = reg.publish(CANARY_ARM, ModelSnapshot::in_memory("bad", Box::new(Fixed(9))));
        assert_eq!(v, 3);
        // …and rollback restores the stable pair on the canary.
        let rolled = reg.rollback();
        assert_eq!(rolled, 2);
        assert_eq!(reg.arm(CANARY_ARM).label, "canary");
        assert_eq!(reg.arm_version(CANARY_ARM), reg.arm_version(0));

        // Promoting arm 0 onto itself is a no-op.
        assert_eq!(reg.promote(0), reg.version());
        // Out-of-range arm ids clamp to the last arm instead of panicking.
        assert_eq!(reg.arm_version(99), reg.arm_version(NUM_ARMS - 1));
    }

    #[test]
    fn irn_architecture_round_trips_and_rejects_mismatch() {
        use irs_data::split::SubSeq;
        let seqs: Vec<SubSeq> = (0..8)
            .map(|s| SubSeq { user: s % 3, items: (0..6).map(|k| (s + k) % 8).collect() })
            .collect();
        let train = irs_core::NeuralTrainConfig { epochs: 1, ..Default::default() };
        let config = IrnConfig {
            dim: 8,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 8,
            train,
            ..Default::default()
        };
        let model = Irn::fit(&seqs, &[], 8, 3, &config, None);
        let dir = std::env::temp_dir().join("irs_serve_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.irsp");
        model.save(std::fs::File::create(&path).unwrap()).unwrap();

        let arch = IrnArchitecture { num_items: 8, num_users: 3, config: config.clone() };
        let snap = arch.load_snapshot(path.to_str().unwrap()).unwrap();
        assert!(!snap.params.is_empty());
        assert!(snap.num_scalars() > 0);
        assert_eq!(
            snap.model.next_item(0, &[0, 1], 5, &[]),
            model.next_item(0, &[0, 1], 5, &[]),
            "loaded snapshot must answer like the original"
        );

        let mut wrong = arch.clone();
        wrong.config.dim = 16;
        assert!(wrong.load_snapshot(path.to_str().unwrap()).is_err());
    }
}
