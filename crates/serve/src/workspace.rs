//! Per-worker request workspace.
//!
//! Every HTTP worker owns one [`RequestWorkspace`] for its whole
//! lifetime.  All the scratch space a request needs lives here — the
//! JSON parse arena, the response-body staging buffer, the scheduler
//! round-trip slot with its query staging buffers — and is *reset, not
//! reallocated*, between requests.  Together with the per-connection
//! I/O buffers ([`crate::conn::Conn`]) this makes the steady-state
//! request path allocation-free: after warm-up, serving a `next` request
//! touches no allocator at all (guarded by the `alloc_steady`
//! integration test).

use crate::json::JsonSlab;
use crate::scheduler::EngineCaller;

/// The default response content type; handlers that serve something
/// else (the Prometheus exposition endpoint) override
/// [`RequestWorkspace::content_type`] per request.
pub(crate) const CONTENT_TYPE_JSON: &str = "application/json";

/// Reusable per-worker scratch space (see module docs).
pub struct RequestWorkspace {
    /// Arena the request body is parsed into (nodes + decoded text are
    /// reused across requests).
    pub slab: JsonSlab,
    /// Response body staging buffer; the response head is written once
    /// the body length is known.
    pub body: Vec<u8>,
    /// `Content-Type` of the staged body (reset to JSON per request;
    /// static so setting it never allocates).
    pub(crate) content_type: &'static str,
    /// Scheduler round-trip workspace: reply slot + query staging
    /// buffers that travel to the batch worker and come back.
    pub caller: EngineCaller,
}

impl RequestWorkspace {
    /// A fresh workspace (all one-time allocations happen lazily as the
    /// first requests size the buffers).
    pub fn new() -> Self {
        RequestWorkspace {
            slab: JsonSlab::default(),
            body: Vec::new(),
            content_type: CONTENT_TYPE_JSON,
            caller: EngineCaller::new(),
        }
    }
}

impl Default for RequestWorkspace {
    fn default() -> Self {
        Self::new()
    }
}
