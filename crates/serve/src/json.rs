//! Minimal JSON parser/serialiser for the HTTP frontend.
//!
//! The offline dependency set has no JSON crate, and the serving protocol
//! only needs objects, arrays, strings, numbers, booleans and null — a
//! hand-rolled recursive-descent parser covers that in a few hundred
//! lines.  Numbers are kept as `f64` (every id in the protocol is far
//! below 2^53, so the round-trip through a double is exact).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (ids, counts).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of non-negative integers (item/user id lists).
    pub fn as_usize_arr(&self) -> Option<Vec<usize>> {
        self.as_arr()?.iter().map(JsonValue::as_usize).collect()
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from a usize (exact below 2^53).
    pub fn num(n: usize) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text.parse().map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    Ok(JsonValue::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the protocol;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = JsonValue::parse(
            r#"{"user": 3, "history": [1, 2, 30], "objective": 7, "quantile": 0.5, "label": "v2"}"#,
        )
        .unwrap();
        assert_eq!(v.get("user").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("history").unwrap().as_usize_arr(), Some(vec![1, 2, 30]));
        assert_eq!(v.get("objective").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("quantile").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("label").unwrap().as_str(), Some("v2"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn round_trips_through_display() {
        let v = JsonValue::obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("item", JsonValue::Null),
            ("ids", JsonValue::Arr(vec![JsonValue::num(1), JsonValue::num(2)])),
            ("name", JsonValue::from("he said \"hi\"\n")),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nulls", "{} trailing", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(JsonValue::num(123456789).to_string(), "123456789");
        assert_eq!(JsonValue::Num(0.25).to_string(), "0.25");
        assert_eq!(JsonValue::Num(-3.0).to_string(), "-3");
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::from("tab\there");
        assert_eq!(v.to_string(), "\"tab\\there\"");
        let v = JsonValue::Str("\u{1}".into());
        assert_eq!(v.to_string(), "\"\\u0001\"");
    }
}
