//! Minimal JSON parser/serialiser for the HTTP frontend.
//!
//! The offline dependency set has no JSON crate, and the serving protocol
//! only needs objects, arrays, strings, numbers, booleans and null — a
//! hand-rolled recursive-descent parser covers that in a few hundred
//! lines.  Numbers are kept as `f64` (every id in the protocol is far
//! below 2^53, so the round-trip through a double is exact).
//!
//! Two parsers share one grammar (pinned against each other by the fuzz
//! suite in `tests/json_fuzz.rs`):
//!
//! * [`JsonValue::parse`] — the allocating DOM (`String`/`Vec` per node),
//!   convenient for tests, clients and cold admin routes;
//! * [`JsonSlab::parse`] — an **arena parser** for the serving hot path:
//!   nodes land in a reusable flat `Vec`, decoded string bytes in a
//!   reusable byte buffer, so parsing a request body performs zero
//!   allocations once the slab's capacity has warmed up.  It reads raw
//!   `&[u8]` (HTTP bodies arrive as bytes) and validates UTF-8 only
//!   where strings require it.
//!
//! Both parsers bound recursion at [`MAX_DEPTH`] so adversarially nested
//! input (`[[[[…`) is a parse error, not a stack overflow.

use std::fmt;

/// Nesting bound for both parsers: deeper documents are rejected with a
/// parse error instead of risking stack exhaustion.  The serving
/// protocol needs depth 2.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (rejects trailing garbage and
    /// nesting beyond [`MAX_DEPTH`]).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (ids, counts).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// An array of non-negative integers (item/user id lists).
    pub fn as_usize_arr(&self) -> Option<Vec<usize>> {
        self.as_arr()?.iter().map(JsonValue::as_usize).collect()
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from a usize (exact below 2^53).
    pub fn num(n: usize) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // JSON requires a digit here; `f64::from_str` alone would also
    // accept `+1` or `.5`.
    if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        return Err(format!("invalid number at byte {start}"));
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text.parse().map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    Ok(JsonValue::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the protocol;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------
// Arena parser (allocation-free steady state)
// ---------------------------------------------------------------------

/// Parse error of the arena parser: a byte offset plus a static message,
/// so the error path performs no allocation either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parse failed at.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
enum Payload {
    Null,
    Bool(bool),
    Num(f64),
    /// Span into [`JsonSlab::text`] (escapes already decoded).
    Str {
        start: u32,
        len: u32,
    },
    /// Sibling-linked children starting at node `first`.
    Arr {
        first: u32,
        len: u32,
    },
    Obj {
        first: u32,
        len: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct SlabNode {
    payload: Payload,
    /// Key span into [`JsonSlab::text`] when this node is an object
    /// entry; `(0, 0)` otherwise.
    key: (u32, u32),
    /// Next sibling node, [`NIL`]-terminated.
    next: u32,
}

/// Reusable parse arena: nodes in one flat `Vec`, decoded string bytes in
/// one byte buffer.  [`JsonSlab::parse`] clears both (retaining their
/// capacity) and refills them, so a slab that has seen a request of each
/// shape parses subsequent requests without touching the allocator.
#[derive(Default)]
pub struct JsonSlab {
    nodes: Vec<SlabNode>,
    text: Vec<u8>,
}

/// A handle to one value inside a [`JsonSlab`] — the arena analogue of
/// `&JsonValue`, with the same accessor vocabulary.
#[derive(Clone, Copy)]
pub struct JsonRef<'a> {
    slab: &'a JsonSlab,
    idx: u32,
}

impl JsonSlab {
    /// An empty slab (no capacity reserved; it warms up on first use).
    pub fn new() -> Self {
        JsonSlab::default()
    }

    /// Parse a complete JSON document from raw bytes (rejects trailing
    /// garbage, nesting beyond [`MAX_DEPTH`], and invalid UTF-8 inside
    /// strings).  Same grammar as [`JsonValue::parse`]; the fuzz suite
    /// pins the two parsers against each other.
    pub fn parse(&mut self, bytes: &[u8]) -> Result<JsonRef<'_>, JsonError> {
        self.nodes.clear();
        self.text.clear();
        let mut pos = 0usize;
        let root = self.parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { at: pos, msg: "trailing characters" });
        }
        Ok(JsonRef { slab: self, idx: root })
    }

    /// Parse an HTTP request body: an empty body means "no fields", like
    /// the frontend's historical `parse_body` behaviour.
    pub fn parse_body(&mut self, bytes: &[u8]) -> Result<JsonRef<'_>, JsonError> {
        if bytes.is_empty() {
            self.nodes.clear();
            self.text.clear();
            self.nodes.push(SlabNode {
                payload: Payload::Obj { first: NIL, len: 0 },
                key: (0, 0),
                next: NIL,
            });
            return Ok(JsonRef { slab: self, idx: 0 });
        }
        self.parse(bytes)
    }

    fn push(&mut self, payload: Payload) -> Result<u32, JsonError> {
        let idx = self.nodes.len();
        if idx >= NIL as usize {
            return Err(JsonError { at: 0, msg: "document too large" });
        }
        self.nodes.push(SlabNode { payload, key: (0, 0), next: NIL });
        Ok(idx as u32)
    }

    fn parse_value(
        &mut self,
        bytes: &[u8],
        pos: &mut usize,
        depth: usize,
    ) -> Result<u32, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError { at: *pos, msg: "nesting too deep" });
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(JsonError { at: *pos, msg: "unexpected end of input" }),
            Some(b'{') => self.parse_container(bytes, pos, depth, true),
            Some(b'[') => self.parse_container(bytes, pos, depth, false),
            Some(b'"') => {
                let (start, len) = self.decode_string(bytes, pos)?;
                self.push(Payload::Str { start, len })
            }
            Some(b't') => self.parse_keyword(bytes, pos, b"true", Payload::Bool(true)),
            Some(b'f') => self.parse_keyword(bytes, pos, b"false", Payload::Bool(false)),
            Some(b'n') => self.parse_keyword(bytes, pos, b"null", Payload::Null),
            Some(_) => self.parse_number(bytes, pos),
        }
    }

    fn parse_keyword(
        &mut self,
        bytes: &[u8],
        pos: &mut usize,
        word: &'static [u8],
        payload: Payload,
    ) -> Result<u32, JsonError> {
        if bytes[*pos..].starts_with(word) {
            *pos += word.len();
            self.push(payload)
        } else {
            Err(JsonError { at: *pos, msg: "invalid literal" })
        }
    }

    fn parse_number(&mut self, bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        // JSON requires a digit here; `f64::from_str` alone would also
        // accept `+1` or `.5`.
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(JsonError { at: start, msg: "invalid number" });
        }
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        // The span is ASCII by construction of the scan above.
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| JsonError { at: start, msg: "invalid number" })?;
        let n: f64 = text.parse().map_err(|_| JsonError { at: start, msg: "invalid number" })?;
        self.push(Payload::Num(n))
    }

    fn parse_container(
        &mut self,
        bytes: &[u8],
        pos: &mut usize,
        depth: usize,
        is_obj: bool,
    ) -> Result<u32, JsonError> {
        let (open, close) = if is_obj { (b'{', b'}') } else { (b'[', b']') };
        self.expect(bytes, pos, open)?;
        // Reserve the container node now so the root keeps a stable index;
        // children patch into it as they are linked.
        let container = self.push(if is_obj {
            Payload::Obj { first: NIL, len: 0 }
        } else {
            Payload::Arr { first: NIL, len: 0 }
        })?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&close) {
            *pos += 1;
            return Ok(container);
        }
        let mut first = NIL;
        let mut last = NIL;
        let mut len = 0u32;
        loop {
            let key = if is_obj {
                skip_ws(bytes, pos);
                let key = self.decode_string(bytes, pos)?;
                skip_ws(bytes, pos);
                self.expect(bytes, pos, b':')?;
                key
            } else {
                (0, 0)
            };
            let child = self.parse_value(bytes, pos, depth + 1)?;
            self.nodes[child as usize].key = key;
            if first == NIL {
                first = child;
            } else {
                self.nodes[last as usize].next = child;
            }
            last = child;
            len += 1;
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(c) if *c == close => {
                    *pos += 1;
                    break;
                }
                _ => {
                    return Err(JsonError {
                        at: *pos,
                        msg: if is_obj { "expected ',' or '}'" } else { "expected ',' or ']'" },
                    })
                }
            }
        }
        self.nodes[container as usize].payload =
            if is_obj { Payload::Obj { first, len } } else { Payload::Arr { first, len } };
        Ok(container)
    }

    /// Decode one JSON string into `text`, returning its span.  Raw runs
    /// are UTF-8-validated before they are copied; escape sequences are
    /// resolved exactly like [`JsonValue::parse`] (unpaired `\u`
    /// surrogates become the replacement character).
    fn decode_string(&mut self, bytes: &[u8], pos: &mut usize) -> Result<(u32, u32), JsonError> {
        self.expect(bytes, pos, b'"')?;
        let start = self.text.len();
        if start + bytes.len() >= NIL as usize {
            return Err(JsonError { at: *pos, msg: "document too large" });
        }
        let mut run = *pos; // start of the current escape-free run
        loop {
            match bytes.get(*pos) {
                None => return Err(JsonError { at: *pos, msg: "unterminated string" }),
                Some(b'"') => {
                    self.copy_run(bytes, run, *pos)?;
                    *pos += 1;
                    let len = self.text.len() - start;
                    return Ok((start as u32, len as u32));
                }
                Some(b'\\') => {
                    self.copy_run(bytes, run, *pos)?;
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => self.text.push(b'"'),
                        Some(b'\\') => self.text.push(b'\\'),
                        Some(b'/') => self.text.push(b'/'),
                        Some(b'n') => self.text.push(b'\n'),
                        Some(b'r') => self.text.push(b'\r'),
                        Some(b't') => self.text.push(b'\t'),
                        Some(b'b') => self.text.push(0x08),
                        Some(b'f') => self.text.push(0x0c),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or(JsonError { at: *pos, msg: "truncated \\u escape" })?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError { at: *pos, msg: "invalid \\u escape" })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError { at: *pos, msg: "invalid \\u escape" })?;
                            let c = char::from_u32(code).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            self.text.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(JsonError { at: *pos, msg: "invalid escape" }),
                    }
                    *pos += 1;
                    run = *pos;
                }
                Some(_) => *pos += 1,
            }
        }
    }

    fn copy_run(&mut self, bytes: &[u8], from: usize, to: usize) -> Result<(), JsonError> {
        if from == to {
            return Ok(());
        }
        std::str::from_utf8(&bytes[from..to])
            .map_err(|_| JsonError { at: from, msg: "invalid UTF-8 in string" })?;
        self.text.extend_from_slice(&bytes[from..to]);
        Ok(())
    }

    fn expect(&self, bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(JsonError { at: *pos, msg: "unexpected character" })
        }
    }

    fn node(&self, idx: u32) -> &SlabNode {
        &self.nodes[idx as usize]
    }

    fn span(&self, start: u32, len: u32) -> &str {
        // Spans are produced by `decode_string`, which only stores
        // validated UTF-8; the unwrap cannot fire.
        std::str::from_utf8(&self.text[start as usize..(start + len) as usize]).unwrap_or("")
    }
}

impl<'a> JsonRef<'a> {
    /// Object field lookup (the arena analogue of [`JsonValue::get`]).
    pub fn get(&self, key: &str) -> Option<JsonRef<'a>> {
        let Payload::Obj { first, .. } = self.slab.node(self.idx).payload else {
            return None;
        };
        let mut cur = first;
        while cur != NIL {
            let node = self.slab.node(cur);
            if self.slab.span(node.key.0, node.key.1) == key {
                return Some(JsonRef { slab: self.slab, idx: cur });
            }
            cur = node.next;
        }
        None
    }

    /// The value as a non-negative integer (ids, counts).
    pub fn as_usize(&self) -> Option<usize> {
        match self.slab.node(self.idx).payload {
            Payload::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as usize)
            }
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self.slab.node(self.idx).payload {
            Payload::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self.slab.node(self.idx).payload {
            Payload::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice (borrowing the slab's text buffer).
    pub fn as_str(&self) -> Option<&'a str> {
        match self.slab.node(self.idx).payload {
            Payload::Str { start, len } => Some(self.slab.span(start, len)),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.slab.node(self.idx).payload, Payload::Null)
    }

    /// Whether the value is an array.
    pub fn is_arr(&self) -> bool {
        matches!(self.slab.node(self.idx).payload, Payload::Arr { .. })
    }

    /// Child count of an array or object (`None` for scalars).
    pub fn len(&self) -> Option<usize> {
        match self.slab.node(self.idx).payload {
            Payload::Arr { len, .. } | Payload::Obj { len, .. } => Some(len as usize),
            _ => None,
        }
    }

    /// Whether the value is an empty array or object.
    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// Iterate the items of an array or the values of an object.  Empty
    /// for scalars.
    pub fn children(&self) -> JsonChildren<'a> {
        let first = match self.slab.node(self.idx).payload {
            Payload::Arr { first, .. } | Payload::Obj { first, .. } => first,
            _ => NIL,
        };
        JsonChildren { slab: self.slab, cur: first }
    }

    /// Rebuild the allocating DOM for this value — the bridge the fuzz
    /// suite uses to compare the two parsers.
    pub fn to_value(&self) -> JsonValue {
        let node = self.slab.node(self.idx);
        match node.payload {
            Payload::Null => JsonValue::Null,
            Payload::Bool(b) => JsonValue::Bool(b),
            Payload::Num(n) => JsonValue::Num(n),
            Payload::Str { start, len } => JsonValue::Str(self.slab.span(start, len).to_string()),
            Payload::Arr { .. } => JsonValue::Arr(self.children().map(|c| c.to_value()).collect()),
            Payload::Obj { first, .. } => {
                let mut fields = Vec::new();
                let mut cur = first;
                while cur != NIL {
                    let child = self.slab.node(cur);
                    fields.push((
                        self.slab.span(child.key.0, child.key.1).to_string(),
                        JsonRef { slab: self.slab, idx: cur }.to_value(),
                    ));
                    cur = child.next;
                }
                JsonValue::Obj(fields)
            }
        }
    }
}

/// Iterator over the children of an array or object node.
pub struct JsonChildren<'a> {
    slab: &'a JsonSlab,
    cur: u32,
}

impl<'a> Iterator for JsonChildren<'a> {
    type Item = JsonRef<'a>;

    fn next(&mut self) -> Option<JsonRef<'a>> {
        if self.cur == NIL {
            return None;
        }
        let idx = self.cur;
        self.cur = self.slab.node(idx).next;
        Some(JsonRef { slab: self.slab, idx })
    }
}

/// Append `s` to `out` as a JSON string literal with the same escaping
/// rules as [`JsonValue`]'s serialiser — the direct-write path response
/// handlers use to avoid building a DOM.
pub fn write_json_str(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                use std::io::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    out.push(b'"');
}

/// Append `n` to `out` with the same integer-exact formatting as
/// [`JsonValue`]'s serialiser (whole numbers render without a fraction).
pub fn write_json_num(out: &mut Vec<u8>, n: f64) {
    use std::io::Write;
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = JsonValue::parse(
            r#"{"user": 3, "history": [1, 2, 30], "objective": 7, "quantile": 0.5, "label": "v2"}"#,
        )
        .unwrap();
        assert_eq!(v.get("user").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("history").unwrap().as_usize_arr(), Some(vec![1, 2, 30]));
        assert_eq!(v.get("objective").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("quantile").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("label").unwrap().as_str(), Some("v2"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn round_trips_through_display() {
        let v = JsonValue::obj(vec![
            ("ok", JsonValue::Bool(true)),
            ("item", JsonValue::Null),
            ("ids", JsonValue::Arr(vec![JsonValue::num(1), JsonValue::num(2)])),
            ("name", JsonValue::from("he said \"hi\"\n")),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nulls", "{} trailing", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(JsonValue::num(123456789).to_string(), "123456789");
        assert_eq!(JsonValue::Num(0.25).to_string(), "0.25");
        assert_eq!(JsonValue::Num(-3.0).to_string(), "-3");
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::from("tab\there");
        assert_eq!(v.to_string(), "\"tab\\there\"");
        let v = JsonValue::Str("\u{1}".into());
        assert_eq!(v.to_string(), "\"\\u0001\"");
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(MAX_DEPTH * 4);
        assert!(JsonValue::parse(&deep).is_err());
        let mut slab = JsonSlab::new();
        assert!(slab.parse(deep.as_bytes()).is_err());
        // A document at a comfortable depth still parses.
        let ok = format!("{}1{}", "[".repeat(8), "]".repeat(8));
        assert!(JsonValue::parse(&ok).is_ok());
        assert!(slab.parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn slab_parses_the_protocol_shapes() {
        let mut slab = JsonSlab::new();
        let v = slab
            .parse(br#"{"user": 3, "history": [1, 2, 30], "objective": 7, "label": "v\n2"}"#)
            .unwrap();
        assert_eq!(v.get("user").unwrap().as_usize(), Some(3));
        let history: Vec<usize> =
            v.get("history").unwrap().children().map(|c| c.as_usize().unwrap()).collect();
        assert_eq!(history, vec![1, 2, 30]);
        assert_eq!(v.get("history").unwrap().len(), Some(3));
        assert_eq!(v.get("objective").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("label").unwrap().as_str(), Some("v\n2"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn slab_matches_the_dom_parser() {
        let mut slab = JsonSlab::new();
        for doc in [
            r#"{"a": [1, {"b": null}, "x"], "c": true, "d": -2.5e3}"#,
            r#"[[], {}, "he said \"hi\"", 0.125]"#,
            "42",
            r#""\u0041\u00e9""#,
        ] {
            let dom = JsonValue::parse(doc).unwrap();
            let arena = slab.parse(doc.as_bytes()).unwrap().to_value();
            assert_eq!(dom, arena, "parsers disagree on {doc}");
        }
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nulls", "{} trailing", "\"unterminated"] {
            assert!(slab.parse(bad.as_bytes()).is_err(), "slab accepted {bad:?}");
        }
    }

    #[test]
    fn slab_rejects_invalid_utf8_in_strings() {
        let mut slab = JsonSlab::new();
        let mut doc = b"{\"k\": \"a".to_vec();
        doc.push(0xff);
        doc.extend_from_slice(b"b\"}");
        assert!(slab.parse(&doc).is_err());
    }

    #[test]
    fn slab_reuses_capacity_across_parses() {
        let mut slab = JsonSlab::new();
        let doc = br#"{"user": 1, "history": [1, 2, 3], "objective": 9}"#;
        slab.parse(doc).unwrap();
        let nodes_cap = slab.nodes.capacity();
        let text_cap = slab.text.capacity();
        for _ in 0..64 {
            slab.parse(doc).unwrap();
        }
        assert_eq!(slab.nodes.capacity(), nodes_cap);
        assert_eq!(slab.text.capacity(), text_cap);
    }

    #[test]
    fn write_json_str_matches_the_dom_serialiser() {
        for s in ["plain", "he said \"hi\"\n", "tab\there", "\u{1}", "héllo"] {
            let mut out = Vec::new();
            write_json_str(&mut out, s);
            assert_eq!(String::from_utf8(out).unwrap(), JsonValue::from(s).to_string());
        }
    }
}
