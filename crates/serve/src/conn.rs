//! Per-connection state for the keep-alive frontend.
//!
//! A [`Conn`] owns a non-blocking socket plus the two buffers a
//! connection ever needs: an input accumulation buffer the incremental
//! parser walks, and an output buffer responses are staged in until the
//! socket accepts them.  Both keep their capacity across requests, so a
//! warm connection reads, parses and responds without allocating.
//!
//! Parsing is a pure function of the buffered bytes
//! ([`Conn::try_parse`]): it either yields a [`RequestSpans`] describing
//! a complete request *in place* (byte ranges into the input buffer — no
//! copies), reports that more bytes are needed, or rejects the
//! connection with the HTTP status to die with.  Over-long header
//! sections (431) and oversized bodies (413) are rejected from the
//! buffered prefix alone — the server never reads unbounded input to
//! decide a request is too big.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on the request head (request line + headers).
pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub(crate) const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Socket read granularity.
const READ_CHUNK: usize = 8 * 1024;
/// Stop buffering input beyond this point; the parser is guaranteed to
/// have either produced a request or rejected the connection by then.
const MAX_BUFFERED: usize = MAX_HEADER_BYTES + MAX_BODY_BYTES + READ_CHUNK;

/// What a non-blocking read pass achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillState {
    /// Socket has no more bytes right now.
    WouldBlock,
    /// Peer half-closed; whatever is buffered is all there will be.
    Eof,
    /// Socket error — the connection is dead.
    Dead,
}

/// A complete request located in the input buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RequestSpans {
    /// Byte range of the method token.
    pub method: (usize, usize),
    /// Byte range of the request target.
    pub path: (usize, usize),
    /// Byte range of the body.
    pub body: (usize, usize),
    /// Total bytes this request consumed (next request starts here).
    pub end: usize,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, `Connection` header respected both ways).
    pub keep_alive: bool,
}

/// Outcome of one [`Conn::try_parse`] call.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ParseStatus {
    /// No complete request buffered yet.
    NeedMore,
    /// A complete request, located in place.
    Complete(RequestSpans),
    /// Protocol violation: answer with this status and close.
    Bad(u16, &'static str),
}

/// One client connection: non-blocking socket + reusable I/O buffers.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Unparsed-input accumulation buffer.
    pub buf: Vec<u8>,
    /// Bytes of `buf` already consumed by parsed requests (compacted
    /// away between worker turns).
    pub parsed: usize,
    /// Staged response bytes not yet accepted by the socket.
    pub out: Vec<u8>,
    /// Bytes of `out` already written to the socket.
    pub out_pos: usize,
    /// Last time the socket produced or accepted bytes (idle-timeout
    /// clock).
    pub last_activity: Instant,
    /// Close once `out` is fully flushed (error response, `Connection:
    /// close`, half-closed peer, …).
    pub close_after_flush: bool,
    /// Peer half-closed its write side.
    pub eof: bool,
    /// Buffered-input length at which the last worker turn stalled on a
    /// partial request with a dry socket (`None` = not stalled).  The
    /// poller only promotes a stalled connection once *more* bytes than
    /// this are buffered; otherwise it would ping-pong a slow client's
    /// half-request between the poller and the workers forever.
    pub parse_stalled_at: Option<usize>,
    open_count: Arc<AtomicUsize>,
}

impl Conn {
    /// Adopt an accepted socket.  Switches it to non-blocking and
    /// disables Nagle (keep-alive responses are small and
    /// latency-sensitive).  `open_count` is incremented here and
    /// decremented when the connection drops.
    pub fn new(stream: TcpStream, open_count: Arc<AtomicUsize>) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        open_count.fetch_add(1, Ordering::Relaxed);
        Ok(Conn {
            stream,
            buf: Vec::new(),
            parsed: 0,
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            eof: false,
            parse_stalled_at: None,
            open_count,
        })
    }

    /// Read until the socket would block (or EOF / error / buffer cap).
    /// Refreshes the idle clock whenever bytes arrive.
    pub fn fill(&mut self) -> FillState {
        loop {
            if self.buf.len() >= MAX_BUFFERED {
                // The parser will reject this connection from what is
                // already buffered; reading further would be unbounded.
                return FillState::WouldBlock;
            }
            let start = self.buf.len();
            self.buf.resize(start + READ_CHUNK, 0);
            match self.stream.read(&mut self.buf[start..]) {
                Ok(0) => {
                    self.buf.truncate(start);
                    self.eof = true;
                    return FillState::Eof;
                }
                Ok(n) => {
                    self.buf.truncate(start + n);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.buf.truncate(start);
                    return FillState::WouldBlock;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.buf.truncate(start);
                }
                Err(_) => {
                    self.buf.truncate(start);
                    return FillState::Dead;
                }
            }
        }
    }

    /// Try to locate one complete request starting at `self.parsed`.
    pub fn try_parse(&self) -> ParseStatus {
        parse_request(&self.buf, self.parsed)
    }

    /// Drop consumed input so the buffer only holds the unparsed tail
    /// (an in-place move — capacity is kept).
    pub fn compact(&mut self) {
        if self.parsed > 0 {
            self.buf.copy_within(self.parsed.., 0);
            self.buf.truncate(self.buf.len() - self.parsed);
            self.parsed = 0;
        }
    }

    /// Push staged response bytes into the socket without blocking.
    /// Returns `Ok(true)` once everything staged has been written (the
    /// buffer is then reset for reuse), `Ok(false)` if the socket
    /// stopped accepting bytes mid-response.
    pub fn flush_out(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }

    /// Whether staged response bytes are waiting on the socket.
    pub fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Whether unparsed input bytes are buffered.
    pub fn has_buffered_input(&self) -> bool {
        self.parsed < self.buf.len()
    }

    /// Whether a worker turn could make parse progress: unparsed bytes
    /// are buffered, and — if the last turn stalled on a partial
    /// request — more of them than when it stalled.
    pub fn parse_can_progress(&self) -> bool {
        let buffered = self.buf.len() - self.parsed;
        buffered > 0 && self.parse_stalled_at.is_none_or(|stalled| buffered > stalled)
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.open_count.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Locate one request in `buf[from..]`.  Pure function of the bytes, so
/// it is directly testable without a socket.
pub(crate) fn parse_request(buf: &[u8], from: usize) -> ParseStatus {
    let input = &buf[from..];
    // Find the end of the header section: the first blank line.  Lines
    // terminate on `\n`; a trailing `\r` is tolerated (same laxness as
    // the previous BufRead-based parser).
    let mut head_end = None; // offset just past the blank line
    let mut pos = 0;
    while pos < input.len() && pos <= MAX_HEADER_BYTES {
        match input[pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let line = &input[pos..pos + nl];
                let line = if line.ends_with(b"\r") { &line[..line.len() - 1] } else { line };
                pos += nl + 1;
                if line.is_empty() {
                    head_end = Some(pos);
                    break;
                }
            }
            None => break,
        }
    }
    let Some(head_end) = head_end else {
        return if input.len() > MAX_HEADER_BYTES {
            ParseStatus::Bad(431, "request header section too large")
        } else {
            ParseStatus::NeedMore
        };
    };
    if head_end > MAX_HEADER_BYTES {
        return ParseStatus::Bad(431, "request header section too large");
    }

    // Request line.
    let first_nl = input.iter().position(|&b| b == b'\n').unwrap_or(head_end);
    let request_line = &input[..first_nl];
    let request_line = if request_line.ends_with(b"\r") {
        &request_line[..request_line.len() - 1]
    } else {
        request_line
    };
    let mut tokens = request_line.split(|&b| b == b' ' || b == b'\t').filter(|t| !t.is_empty());
    let (Some(method), Some(path)) = (tokens.next(), tokens.next()) else {
        return ParseStatus::Bad(400, "malformed request line");
    };
    let Some(version) = tokens.next() else {
        return ParseStatus::Bad(400, "malformed request line");
    };
    if tokens.next().is_some() {
        return ParseStatus::Bad(400, "malformed request line");
    }
    let mut keep_alive = match version {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        _ => return ParseStatus::Bad(505, "unsupported HTTP version"),
    };
    let method_start = from + offset_in(input, method);
    let path_start = from + offset_in(input, path);

    // Headers: walk the remaining lines of the head for the few headers
    // the framing depends on.
    let mut content_length = 0usize;
    let mut line_start = first_nl + 1;
    while line_start < head_end {
        let nl = input[line_start..head_end]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| line_start + p)
            .unwrap_or(head_end);
        let line = &input[line_start..nl];
        let line = if line.ends_with(b"\r") { &line[..line.len() - 1] } else { line };
        line_start = nl + 1;
        if line.is_empty() {
            break;
        }
        let Some(colon) = line.iter().position(|&b| b == b':') else { continue };
        let name = &line[..colon];
        let value = trim_ascii(&line[colon + 1..]);
        if name.eq_ignore_ascii_case(b"content-length") {
            let Ok(text) = std::str::from_utf8(value) else {
                return ParseStatus::Bad(400, "bad content-length");
            };
            let Ok(n) = text.parse::<usize>() else {
                return ParseStatus::Bad(400, "bad content-length");
            };
            content_length = n;
        } else if name.eq_ignore_ascii_case(b"connection") {
            // The value is a comma-separated option list (e.g.
            // `keep-alive, Upgrade`); `close` anywhere in it wins.
            let mut wants_close = false;
            let mut wants_keep_alive = false;
            for option in value.split(|&b| b == b',') {
                let option = trim_ascii(option);
                wants_close |= option.eq_ignore_ascii_case(b"close");
                wants_keep_alive |= option.eq_ignore_ascii_case(b"keep-alive");
            }
            if wants_close {
                keep_alive = false;
            } else if wants_keep_alive {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case(b"transfer-encoding") {
            // Chunked framing is not supported; rejecting is the only
            // safe answer (guessing the framing would desynchronise the
            // connection).
            return ParseStatus::Bad(501, "transfer-encoding not supported");
        }
    }

    if content_length > MAX_BODY_BYTES {
        return ParseStatus::Bad(413, "request body too large");
    }
    if input.len() < head_end + content_length {
        return ParseStatus::NeedMore;
    }
    ParseStatus::Complete(RequestSpans {
        method: (method_start, method_start + method.len()),
        path: (path_start, path_start + path.len()),
        body: (from + head_end, from + head_end + content_length),
        end: from + head_end + content_length,
        keep_alive,
    })
}

/// Byte offset of subslice `part` inside `whole` (both from the same
/// allocation — the request line tokens always are).
fn offset_in(whole: &[u8], part: &[u8]) -> usize {
    part.as_ptr() as usize - whole.as_ptr() as usize
}

fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = s {
        s = rest;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> RequestSpans {
        match parse_request(raw, 0) {
            ParseStatus::Complete(s) => s,
            other => panic!("expected a complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_simple_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let s = complete(raw);
        assert_eq!(&raw[s.method.0..s.method.1], b"GET");
        assert_eq!(&raw[s.path.0..s.path.1], b"/healthz");
        assert_eq!(s.body.0, s.body.1);
        assert_eq!(s.end, raw.len());
        assert!(s.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_with_body_and_respects_connection_close() {
        let raw =
            b"POST /v1/session HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\n{\"a\"";
        let s = complete(raw);
        assert_eq!(&raw[s.method.0..s.method.1], b"POST");
        assert_eq!(&raw[s.body.0..s.body.1], b"{\"a\"");
        assert!(!s.keep_alive);
    }

    #[test]
    fn http_10_defaults_to_close_but_can_opt_in() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!complete(raw).keep_alive);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(complete(raw).keep_alive);
    }

    #[test]
    fn connection_header_option_lists_are_honoured() {
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive, Upgrade\r\n\r\n";
        assert!(complete(raw).keep_alive, "keep-alive inside an option list was ignored");
        let raw = b"GET / HTTP/1.1\r\nConnection: foo, close\r\n\r\n";
        assert!(!complete(raw).keep_alive, "close inside an option list was ignored");
        let raw = b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n";
        assert!(!complete(raw).keep_alive, "close must win over keep-alive in one list");
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        for raw in [
            &b"GET /health"[..],
            b"GET / HTTP/1.1\r\nHost: x\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345",
        ] {
            assert!(matches!(parse_request(raw, 0), ParseStatus::NeedMore), "{raw:?}");
        }
    }

    #[test]
    fn second_pipelined_request_parses_from_its_offset() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let first = complete(raw);
        let second = match parse_request(raw, first.end) {
            ParseStatus::Complete(s) => s,
            other => panic!("expected second request, got {other:?}"),
        };
        assert_eq!(&raw[second.path.0..second.path.1], b"/b");
        assert_eq!(second.end, raw.len());
    }

    #[test]
    fn oversized_header_and_body_are_rejected_without_reading_more() {
        let mut raw = b"GET / HTTP/1.1\r\nX: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 10));
        assert!(matches!(parse_request(&raw, 0), ParseStatus::Bad(431, _)));

        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(
            matches!(parse_request(raw.as_bytes(), 0), ParseStatus::Bad(413, _)),
            "413 must come from the declared length, before any body bytes arrive"
        );
    }

    #[test]
    fn protocol_violations_get_the_right_status() {
        assert!(matches!(parse_request(b"\x01\x02\r\n\r\n", 0), ParseStatus::Bad(400, _)));
        assert!(matches!(parse_request(b"GET / HTTP/2.0\r\n\r\n", 0), ParseStatus::Bad(505, _)));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n", 0),
            ParseStatus::Bad(400, _)
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 0),
            ParseStatus::Bad(501, _)
        ));
    }
}
