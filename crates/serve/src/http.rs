//! HTTP/1.1 JSON frontend on `std::net::TcpListener`.
//!
//! Serving v2: keep-alive with pipelining over a bounded worker pool
//! (see [`crate::pool`] for the accept → poller → ready-queue → worker
//! topology).  Requests are parsed incrementally and in place from the
//! connection's input buffer ([`crate::conn`]), handled against a
//! per-worker reusable [`RequestWorkspace`], and answered by writing
//! JSON directly into the connection's output buffer — after warm-up the
//! steady-state request path performs no heap allocation.  The protocol:
//!
//! | Route                           | Body → Reply |
//! |---------------------------------|--------------|
//! | `GET /healthz`                  | → `{ok, snapshot, version}` |
//! | `GET /v1/stats`                 | → flat JSON rendered from the metrics registry |
//! | `GET /metrics`                  | → Prometheus text exposition from the same registry |
//! | `POST /v1/session`              | `{user, history, objective, max_len?, patience?}` → `{session_id}` |
//! | `GET /v1/session/{id}`          | → session state summary |
//! | `POST /v1/session/{id}/next`    | → `{item, done}` (blocks through the scheduler) |
//! | `POST /v1/session/{id}/feedback`| `{item, accepted}` → `{done, reached_objective, …}` |
//! | `DELETE /v1/session/{id}`       | → final outcome |
//! | `POST /v1/admin/swap`           | `{path}` → `{version, label}` (hot-swap, stable arm) |
//! | `POST /v1/admin/split`          | `{weights}` → `{weights}` (traffic split across arms) |
//! | `POST /v1/admin/promote`        | → `{version}` (canary becomes stable, 100% traffic) |
//! | `POST /v1/admin/rollback`       | → `{version}` (canary reset to stable, 100% stable) |
//! | `POST /v1/admin/publish`        | → `{version}` (force an online-trainer publish tick) |
//! | `POST /v1/admin/shutdown`       | → `{ok}` and the accept loop exits |
//!
//! Sessions are sticky-assigned to a traffic arm at creation by the
//! seeded weighted draw in [`crate::split`]; every request the session
//! makes scores against that arm's snapshot, and `/v1/stats` reports
//! per-arm request/acceptance/latency counters so a canary can be
//! compared against stable on live traffic before `promote` flips it to
//! 100%.
//!
//! Protocol behaviour: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
//! close, and the `Connection` header overrides either way; every
//! response carries a `Content-Length`; oversized heads/bodies are
//! rejected with 431/413 from the buffered prefix alone; chunked
//! transfer encoding and HTTP versions other than 1.0/1.1 are rejected
//! (501/505); `Expect: 100-continue` is ignored (clients send the body
//! after their grace period).  Connections idle past
//! [`ServerConfig::idle_timeout`] are closed by the poller.
//!
//! Item ids in requests are door-checked against the snapshot's
//! catalogue (400 on out-of-range, instead of a panic deep in an
//! embedding lookup).  User ids are deliberately *not* bounded: the IRN
//! aliases unseen users into its trained table (`u % num_users`, the
//! same cold-start rule its scalar reference path applies everywhere),
//! so a brand-new user is served the impressionability profile of an
//! existing one rather than rejected.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use irs_core::InteractiveSession;
use irs_nn::EncodingLayout;
use irs_obs::FlatValue;
use parking_lot::RwLock;

use crate::conn::{Conn, RequestSpans};
use crate::json::{write_json_num, write_json_str, JsonRef};
use crate::online::{FeedbackEvent, ForcePublishError, OnlineHandle};
use crate::pool;
use crate::scheduler::Engine;
use crate::session::SessionStore;
use crate::snapshot::{SnapshotLoader, CANARY_ARM, NUM_ARMS};
use crate::split::TrafficSplit;
use crate::workspace::{RequestWorkspace, CONTENT_TYPE_JSON};

/// `Content-Type` of the Prometheus text exposition format.
const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Frontend configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default accepted-items budget for new sessions.
    pub max_len: usize,
    /// Default per-step rejection patience for new sessions.
    pub patience: usize,
    /// Session-store shard count.
    pub session_shards: usize,
    /// Cap on live sessions; `POST /v1/session` answers 429 at the cap
    /// (clients free slots with `DELETE /v1/session/{id}`).  The hard
    /// backstop behind TTL eviction.
    pub max_sessions: usize,
    /// Cap on concurrently open connections; excess connections are
    /// answered 503 inline on the accept thread.
    pub max_connections: usize,
    /// Idle time after which an abandoned session is evicted by the
    /// background sweeper (`None` disables sweeping; sessions then live
    /// until `DELETE` or shutdown).  `irs serve` exposes this as
    /// `--session-ttl-s`.
    pub session_ttl: Option<Duration>,
    /// HTTP worker threads serving parsed requests (0 = auto: twice the
    /// available cores, minimum 8).  `irs serve` exposes this as
    /// `--http-workers`.
    pub http_workers: usize,
    /// Keep-alive connections idle past this are closed by the poller.
    /// `irs serve` exposes this as `--idle-timeout-s`.
    pub idle_timeout: Duration,
    /// Byte budget (in MiB) for parked per-session context caches; 0
    /// disables context caching entirely (every request takes the
    /// batched cold path).  When the budget is exhausted the
    /// least-recently-seen session's cache is evicted first.  `irs
    /// serve` exposes this as `--context-cache-mb`.
    pub context_cache_mb: usize,
    /// The encoding layout the served models score with, reported in the
    /// startup log and `/v1/stats` (`None` when the frontend serves
    /// non-IRN models and the layout doesn't apply).
    pub layout: Option<EncodingLayout>,
    /// Seed for the sticky session→arm traffic-split hash; a fixed seed
    /// makes arm assignment reproducible across restarts.
    pub split_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_len: 20,
            patience: 3,
            session_shards: 16,
            max_sessions: 65_536,
            max_connections: 8_192,
            session_ttl: None,
            http_workers: 0,
            idle_timeout: Duration::from_secs(30),
            context_cache_mb: 64,
            layout: None,
            split_seed: 0x1e5_c0de,
        }
    }
}

pub(crate) struct ServerState {
    pub(crate) engine: Arc<Engine>,
    pub(crate) sessions: SessionStore,
    loader: Option<SnapshotLoader>,
    pub(crate) config: ServerConfig,
    shutdown: AtomicBool,
    started: Instant,
    /// Sessions aged out by the TTL sweeper since startup.
    evicted: std::sync::atomic::AtomicU64,
    /// Resolved HTTP worker-pool size (config value or the 2×cores
    /// default).
    http_workers: usize,
    /// Currently open client connections (incremented at accept,
    /// decremented when a [`Conn`] drops).
    open_conns: Arc<AtomicUsize>,
    /// Sticky session→arm assignment plus per-arm serving metrics.
    split: TrafficSplit,
    /// The online trainer, when `--online-train` attached one.  Handlers
    /// clone the `Arc` out of the read guard, so a slow forced publish
    /// never holds this lock (stats stay responsive).
    online: RwLock<Option<Arc<OnlineHandle>>>,
}

/// A bound (but not yet running) HTTP server.
pub struct HttpServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle for driving a running server from another thread (tests, the
/// load generator): the bound address plus a way to request shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit (same effect as `POST
    /// /v1/admin/shutdown`).
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }

    /// Sessions evicted by the TTL sweeper since startup.
    pub fn evicted_sessions(&self) -> u64 {
        self.state.evicted.load(Ordering::Relaxed)
    }

    /// Currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.state.sessions.len()
    }

    /// Currently open client connections.
    pub fn open_connections(&self) -> usize {
        self.state.open_conns.load(Ordering::Relaxed)
    }

    /// The resolved HTTP worker-pool size.
    pub fn http_workers(&self) -> usize {
        self.state.http_workers
    }

    /// Bytes of per-session context caches currently parked.
    pub fn cache_resident_bytes(&self) -> usize {
        self.state.sessions.cache_resident_bytes()
    }

    /// Context caches evicted to stay within the byte budget.
    pub fn cache_evictions(&self) -> u64 {
        self.state.sessions.cache_evictions()
    }
}

impl HttpServer {
    /// Bind the frontend.  `loader` enables `POST /v1/admin/swap`; without
    /// it the route answers 501.
    pub fn bind(
        addr: &str,
        engine: Arc<Engine>,
        loader: Option<SnapshotLoader>,
        config: ServerConfig,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let http_workers = if config.http_workers == 0 {
            // Workers park on the batching engine while their request is
            // in flight, so the pool needs headroom beyond the core
            // count — too few workers caps the engine's batch depth.
            (2 * std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)).max(8)
        } else {
            config.http_workers
        };
        // The traffic split records into the engine's metric registry:
        // the same per-arm counters the hot path bumps are the ones
        // /metrics and /v1/stats render.
        let split = TrafficSplit::with_metrics(config.split_seed, engine.metrics().arm_handles());
        let state = Arc::new(ServerState {
            engine,
            sessions: SessionStore::with_cache_budget(
                config.session_shards,
                config.context_cache_mb.saturating_mul(1024 * 1024),
            ),
            loader,
            split,
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            evicted: std::sync::atomic::AtomicU64::new(0),
            http_workers,
            open_conns: Arc::new(AtomicUsize::new(0)),
            online: RwLock::new(None),
        });
        Ok(HttpServer { listener, state })
    }

    /// Attach a running online trainer: `POST
    /// /v1/session/{id}/feedback` starts logging replay events,
    /// `/v1/admin/publish` forces publish ticks, and `/v1/stats` gains
    /// the `online_*` counters.  The trainer is stopped when
    /// [`HttpServer::run`] returns.
    pub fn set_online(&self, handle: OnlineHandle) {
        *self.state.online.write() = Some(Arc::new(handle));
    }

    /// The bound address (use port 0 in `bind` for an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle usable from other threads while `run` blocks.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle { addr: self.listener.local_addr()?, state: self.state.clone() })
    }

    /// Serve until a shutdown request arrives, then return.  The engine
    /// is left running (the caller owns it and decides when to stop the
    /// scheduler).
    ///
    /// The accept loop admits connections up to
    /// [`ServerConfig::max_connections`] and hands them to the worker
    /// pool; shutdown drains in two phases (workers finish every
    /// accepted request, then the poller flushes and closes parked
    /// connections).
    ///
    /// When [`ServerConfig::session_ttl`] is set, a background sweeper
    /// ages out sessions idle past the TTL (checking every quarter-TTL,
    /// clamped to 10 ms – 60 s, napping in short slices so shutdown is
    /// never delayed by more than ~250 ms) so abandoned sessions stop
    /// counting against `max_sessions`; evictions are tallied in the
    /// stats.  Sessions with a request in flight are pinned and never
    /// swept mid-request.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let sweeper = self.state.config.session_ttl.map(|ttl| {
            let state = self.state.clone();
            std::thread::spawn(move || {
                let interval = (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(60));
                let nap_cap = Duration::from_millis(250);
                'sweeping: loop {
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break 'sweeping;
                        }
                        let nap = (interval - slept).min(nap_cap);
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                    let evicted = state.sessions.sweep_older_than(ttl);
                    if evicted > 0 {
                        state.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
                    }
                }
            })
        });
        let shared = Arc::new(pool::Shared::new());
        let workers = pool::spawn_workers(&shared, &self.state, addr, self.state.http_workers);
        let poller = pool::spawn_poller(&shared, self.state.config.idle_timeout);
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            if self.state.open_conns.load(Ordering::Relaxed) >= self.state.config.max_connections {
                // Turned away inline (blocking write of a tiny response)
                // instead of admitting an unbounded connection set.
                let _ = write_busy(&mut stream);
                continue;
            }
            if let Ok(conn) = Conn::new(stream, self.state.open_conns.clone()) {
                shared.push_ready(conn);
            }
        }
        // Phase 1: workers drain the ready queue so every accepted
        // request — the shutdown 200 included — gets its response.
        shared.begin_drain();
        for handle in workers {
            let _ = handle.join();
        }
        // Phase 2: the poller flushes whatever is still staged on parked
        // connections, then closes them.
        shared.stop_poller();
        let _ = poller.join();
        if let Some(sweeper) = sweeper {
            let _ = sweeper.join();
        }
        // Stop the online trainer last: every route that could log a
        // feedback event or force a publish has already drained.  The
        // stop is a bounded join — a stalled trainer is detached, never
        // a shutdown hang.
        if let Some(online) = self.state.online.read().clone() {
            online.stop();
        }
        Ok(())
    }
}

/// Unblock a listener waiting in `accept` after the shutdown flag is set.
fn wake_listener(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

// ---------------------------------------------------------------------
// Response plumbing (direct-write, allocation-free)
// ---------------------------------------------------------------------

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Append a response head.  Every response carries an explicit
/// `Content-Length` (keep-alive framing depends on it).
fn write_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body_len: usize,
    keep_alive: bool,
) {
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {body_len}\r\nConnection: {}\r\n\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
}

fn write_error_body(body: &mut Vec<u8>, message: &str) {
    body.extend_from_slice(b"{\"error\":");
    write_json_str(body, message);
    body.push(b'}');
}

/// Stage a complete error response on `out` (used for protocol errors
/// that close the connection).
pub(crate) fn write_error_response(
    out: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    status: u16,
    message: &str,
) {
    scratch.clear();
    write_error_body(scratch, message);
    write_head(out, status, CONTENT_TYPE_JSON, scratch.len(), false);
    out.extend_from_slice(scratch);
}

/// Inline 503 for the accept loop (the socket is still in blocking mode
/// here — `Conn::new` was never called).  The write is bounded by a
/// short timeout so a client that never reads cannot stall accepting.
fn write_busy(stream: &mut TcpStream) -> io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    let body = b"{\"error\":\"server busy\"}";
    write!(
        stream,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Protocol errors carrying the HTTP status to answer with.  Error paths
/// are cold, so they may allocate their message freely.
struct HttpError {
    status: u16,
    message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self::new(404, message)
    }
}

/// Handle one parsed request: route it, run the handler (which writes
/// the response body into the workspace), and stage the full response on
/// `out`.  Infallible — every outcome becomes a staged response.
pub(crate) fn handle_parsed(
    state: &Arc<ServerState>,
    addr: SocketAddr,
    ws: &mut RequestWorkspace,
    buf: &[u8],
    spans: &RequestSpans,
    out: &mut Vec<u8>,
) {
    ws.body.clear();
    ws.content_type = CONTENT_TYPE_JSON;
    let status = match route(state, addr, ws, buf, spans) {
        Ok(status) => status,
        Err(e) => {
            ws.body.clear();
            ws.content_type = CONTENT_TYPE_JSON;
            write_error_body(&mut ws.body, &e.message);
            e.status
        }
    };
    write_head(out, status, ws.content_type, ws.body.len(), spans.keep_alive);
    out.extend_from_slice(&ws.body);
}

fn route(
    state: &Arc<ServerState>,
    addr: SocketAddr,
    ws: &mut RequestWorkspace,
    buf: &[u8],
    spans: &RequestSpans,
) -> Result<u16, HttpError> {
    let method = &buf[spans.method.0..spans.method.1];
    let target = std::str::from_utf8(&buf[spans.path.0..spans.path.1])
        .map_err(|_| HttpError::bad_request("request target is not UTF-8"))?;
    // Route on the path alone; query strings are accepted and ignored
    // (health probes commonly append `?...`).
    let path = target.split('?').next().unwrap_or("");
    let mut it = path.trim_matches('/').split('/');
    let seg = [it.next(), it.next(), it.next(), it.next()];
    if it.next().is_some() {
        return Err(HttpError::not_found(format!("no route for {target}")));
    }
    let body = &buf[spans.body.0..spans.body.1];
    match (method, seg) {
        (b"GET", [Some("healthz"), None, None, None]) => {
            let snap = state.engine.registry().current();
            let b = &mut ws.body;
            b.extend_from_slice(b"{\"ok\":true,\"snapshot\":");
            write_json_str(b, &snap.label);
            b.extend_from_slice(b",\"version\":");
            write_json_num(b, state.engine.registry().version() as f64);
            b.push(b'}');
            Ok(200)
        }
        (b"GET", [Some("v1"), Some("stats"), None, None]) => {
            stats_payload(state, &mut ws.body);
            Ok(200)
        }
        (b"GET", [Some("metrics"), None, None, None]) => {
            metrics_payload(state, &mut ws.body);
            ws.content_type = CONTENT_TYPE_PROMETHEUS;
            Ok(200)
        }
        (b"POST", [Some("v1"), Some("session"), None, None]) => create_session(state, ws, body),
        (b"GET", [Some("v1"), Some("session"), Some(id), None]) => {
            let id = parse_session_id(id)?;
            let b = &mut ws.body;
            state
                .sessions
                .with(id, |s| write_session_payload(b, id, s))
                .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?;
            Ok(200)
        }
        (b"POST", [Some("v1"), Some("session"), Some(id), Some("next")]) => {
            next_item(state, ws, parse_session_id(id)?)
        }
        (b"POST", [Some("v1"), Some("session"), Some(id), Some("feedback")]) => {
            feedback(state, ws, parse_session_id(id)?, body)
        }
        (b"DELETE", [Some("v1"), Some("session"), Some(id), None]) => {
            let id = parse_session_id(id)?;
            let session = state
                .sessions
                .remove(id)
                .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?;
            write_session_payload(&mut ws.body, id, &session);
            Ok(200)
        }
        (b"POST", [Some("v1"), Some("admin"), Some("swap"), None]) => {
            swap_snapshot(state, ws, body)
        }
        (b"POST", [Some("v1"), Some("admin"), Some("split"), None]) => set_split(state, ws, body),
        (b"POST", [Some("v1"), Some("admin"), Some("promote"), None]) => promote(state, ws),
        (b"POST", [Some("v1"), Some("admin"), Some("rollback"), None]) => rollback(state, ws),
        (b"POST", [Some("v1"), Some("admin"), Some("publish"), None]) => force_publish(state, ws),
        (b"POST", [Some("v1"), Some("admin"), Some("shutdown"), None]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop from a detached thread so the
            // response reaches the client first.
            std::thread::spawn(move || wake_listener(addr));
            ws.body.extend_from_slice(b"{\"ok\":true}");
            Ok(200)
        }
        // Known paths reached with the wrong verb are 405; everything
        // else (typo'd routes included) is 404.
        (_, [Some("healthz"), None, None, None])
        | (_, [Some("metrics"), None, None, None])
        | (_, [Some("v1"), Some("stats"), None, None])
        | (_, [Some("v1"), Some("session"), None, None])
        | (_, [Some("v1"), Some("session"), Some(_), None])
        | (_, [Some("v1"), Some("session"), Some(_), Some("next" | "feedback")])
        | (
            _,
            [Some("v1"), Some("admin"), Some("swap" | "split" | "promote" | "rollback" | "publish" | "shutdown"), None],
        ) => Err(HttpError::new(405, "method not allowed")),
        _ => Err(HttpError::not_found(format!("no route for {target}"))),
    }
}

fn parse_session_id(raw: &str) -> Result<u64, HttpError> {
    raw.parse().map_err(|_| HttpError::bad_request(format!("invalid session id '{raw}'")))
}

fn parse_body<'s>(
    slab: &'s mut crate::json::JsonSlab,
    body: &[u8],
) -> Result<JsonRef<'s>, HttpError> {
    slab.parse_body(body).map_err(|e| HttpError::bad_request(format!("invalid JSON: {e}")))
}

fn field_usize(body: &JsonRef<'_>, key: &str) -> Result<usize, HttpError> {
    body.get(key)
        .and_then(|v| v.as_usize())
        .ok_or_else(|| HttpError::bad_request(format!("missing or invalid '{key}'")))
}

fn write_id_array(b: &mut Vec<u8>, items: &[usize]) {
    b.push(b'[');
    for (i, &item) in items.iter().enumerate() {
        if i > 0 {
            b.push(b',');
        }
        write_json_num(b, item as f64);
    }
    b.push(b']');
}

fn write_session_payload(b: &mut Vec<u8>, id: u64, session: &InteractiveSession) {
    b.extend_from_slice(b"{\"session_id\":");
    write_json_num(b, id as f64);
    b.extend_from_slice(b",\"user\":");
    write_json_num(b, session.user() as f64);
    b.extend_from_slice(b",\"objective\":");
    write_json_num(b, session.objective() as f64);
    b.extend_from_slice(b",\"accepted\":");
    write_id_array(b, session.accepted());
    b.extend_from_slice(b",\"rejected\":");
    write_id_array(b, session.rejected());
    b.extend_from_slice(b",\"proposals\":");
    write_json_num(b, session.proposals() as f64);
    b.extend_from_slice(b",\"reached_objective\":");
    b.extend_from_slice(if session.reached_objective() { b"true" } else { b"false" });
    b.extend_from_slice(b",\"done\":");
    b.extend_from_slice(if session.is_done() { b"true" } else { b"false" });
    b.push(b'}');
}

/// Copy every sampled (non-hot-path) value into its registry handle so
/// a scrape sees a coherent point-in-time view.  Called by both
/// exposition endpoints immediately before rendering.  Steady-state
/// allocation-free: gauges are atomic stores, text handles skip the
/// write when unchanged, and the snapshot reads are `Arc` clones.
fn sample_metrics(state: &Arc<ServerState>) {
    let m = state.engine.metrics();
    let stats = state.engine.stats();
    let policy = state.engine.policy();
    let snap = state.engine.registry().current();
    m.mean_batch.set(stats.mean_batch());
    m.cache_resident_bytes.set(state.sessions.cache_resident_bytes() as f64);
    m.cache_evictions.store(state.sessions.cache_evictions());
    m.sessions.set(state.sessions.len() as f64);
    m.evicted_sessions.store(state.evicted.load(Ordering::Relaxed));
    m.snapshot.set_if_changed(&snap.label);
    m.snapshot_version.set(state.engine.registry().version() as f64);
    m.snapshot_params.set(snap.num_scalars() as f64);
    m.max_batch.set(policy.max_batch as f64);
    m.max_wait_us.set(policy.max_wait.as_micros() as f64);
    m.workers.set(policy.workers as f64);
    m.http_workers.set(state.http_workers as f64);
    m.open_connections.set(state.open_conns.load(Ordering::Relaxed) as f64);
    m.layout.set_if_changed(layout_name(state.config.layout));
    m.context_cache_budget_mb.set(state.config.context_cache_mb as f64);
    let weights = state.split.weights();
    let census = state.sessions.arm_census();
    for arm in 0..NUM_ARMS {
        let obs = &m.arms[arm];
        let hot = state.split.metrics(arm);
        let (snap, version) = state.engine.registry().arm_versioned(arm);
        obs.weight.set(weights[arm]);
        obs.snapshot.set_if_changed(&snap.label);
        obs.version.set(version as f64);
        obs.sessions.set(census[arm] as f64);
        obs.acceptance_rate.set(hot.acceptance_rate());
        obs.p50_us.set(hot.latency_quantile_us(0.5));
        obs.p95_us.set(hot.latency_quantile_us(0.95));
        obs.window_requests.set(hot.window_requests() as f64);
        obs.window_accepted.set(hot.window_accepted() as f64);
        obs.window_rejected.set(hot.window_rejected() as f64);
        obs.window_acceptance_rate.set(hot.window_acceptance_rate());
        obs.window_mean_us.set(hot.window_mean_latency_us());
    }
    // Online-learning counters (zeroes when --online-train is off, so
    // dashboards scrape one stable schema).
    let online = state.online.read().clone();
    let stats = online.as_ref().map(|h| h.stats());
    m.online.enabled.set(online.is_some());
    m.online.events_logged.store(stats.map_or(0, |s| s.events_logged));
    m.online.events_dropped.store(stats.map_or(0, |s| s.events_dropped));
    m.online.replay_len.set(stats.map_or(0, |s| s.replay_len as u64) as f64);
    m.online.folds.store(stats.map_or(0, |s| s.folds));
    m.online.examples.store(stats.map_or(0, |s| s.examples));
    m.online.publishes.store(stats.map_or(0, |s| s.publishes));
    // Non-finite (no fold yet / trainer off) renders as JSON null and
    // Prometheus NaN.
    m.online.last_loss.set(stats.map_or(f64::NAN, |s| s.last_loss as f64));
    m.online.trainer_panics.store(stats.map_or(0, |s| s.trainer_panics));
    m.online.trainer_alive.set(stats.is_some_and(|s| s.trainer_alive));
    m.uptime_ms.set(state.started.elapsed().as_millis() as f64);
}

/// `/v1/stats`: the registry's flat view as one JSON object.  Key order
/// is registration order, which preserves the layout of the old
/// hand-written serialiser.
fn stats_payload(state: &Arc<ServerState>, b: &mut Vec<u8>) {
    sample_metrics(state);
    b.push(b'{');
    let mut first = true;
    state.engine.metrics().registry().visit_flat(|key, value| {
        if !first {
            b.push(b',');
        }
        first = false;
        write_json_str(b, key);
        b.push(b':');
        match value {
            FlatValue::Int(v) => write_json_num(b, v as f64),
            FlatValue::Num(v) if v.is_finite() => write_json_num(b, v),
            FlatValue::Num(_) => b.extend_from_slice(b"null"),
            FlatValue::Bool(v) => b.extend_from_slice(if v { b"true" } else { b"false" }),
            FlatValue::Text(s) => write_json_str(b, s),
        }
    });
    b.push(b'}');
}

/// `GET /metrics`: Prometheus text exposition of the same registry.
fn metrics_payload(state: &Arc<ServerState>, b: &mut Vec<u8>) {
    sample_metrics(state);
    state.engine.metrics().registry().render_prometheus(b);
}

/// The operator-facing name of an encoding layout (shared by the startup
/// log and `/v1/stats`, so the two can never disagree).
pub fn layout_name(layout: Option<EncodingLayout>) -> &'static str {
    match layout {
        Some(EncodingLayout::AppendOnly) => "append",
        Some(EncodingLayout::PrePadded) => "prepadded",
        None => "n/a",
    }
}

fn create_session(
    state: &Arc<ServerState>,
    ws: &mut RequestWorkspace,
    body: &[u8],
) -> Result<u16, HttpError> {
    // Best-effort cap (checked outside the shard locks): bounds the
    // memory abandoned sessions can pin.
    if state.sessions.len() >= state.config.max_sessions {
        return Err(HttpError::new(
            429,
            format!(
                "session limit {} reached; DELETE finished sessions",
                state.config.max_sessions
            ),
        ));
    }
    let parsed = parse_body(&mut ws.slab, body)?;
    let user = field_usize(&parsed, "user")?;
    let objective = field_usize(&parsed, "objective")?;
    let history = match parsed.get("history") {
        None => Vec::new(),
        Some(h) if h.is_arr() => {
            let mut ids = Vec::with_capacity(h.len().unwrap_or(0));
            for item in h.children() {
                ids.push(
                    item.as_usize().ok_or_else(|| HttpError::bad_request("invalid 'history'"))?,
                );
            }
            ids
        }
        Some(_) => return Err(HttpError::bad_request("invalid 'history'")),
    };
    let max_len = match parsed.get("max_len") {
        None => state.config.max_len,
        Some(v) => v.as_usize().ok_or_else(|| HttpError::bad_request("invalid 'max_len'"))?,
    };
    let patience = match parsed.get("patience") {
        None => state.config.patience,
        Some(v) => v.as_usize().ok_or_else(|| HttpError::bad_request("invalid 'patience'"))?,
    };

    // Reject out-of-catalogue ids up front when the snapshot knows its
    // catalogue (an in-range check at the door instead of a panic deep in
    // an embedding lookup).
    if let Some(n) = state.engine.registry().current().num_items {
        if objective >= n {
            return Err(HttpError::bad_request(format!(
                "objective {objective} outside catalogue of {n} items"
            )));
        }
        if let Some(&bad) = history.iter().find(|&&i| i >= n) {
            return Err(HttpError::bad_request(format!(
                "history item {bad} outside catalogue of {n} items"
            )));
        }
    }

    // Sticky traffic-split assignment: one seeded weighted draw on the
    // freshly allocated id decides which snapshot arm serves this
    // session for its whole life.
    let (id, arm) = state.sessions.insert_assigned(
        InteractiveSession::new(user, history, objective, max_len, patience),
        |id| state.split.assign(id),
    );
    let b = &mut ws.body;
    b.extend_from_slice(b"{\"session_id\":");
    write_json_num(b, id as f64);
    b.extend_from_slice(b",\"arm\":");
    write_json_num(b, arm as f64);
    b.extend_from_slice(b",\"max_len\":");
    write_json_num(b, max_len as f64);
    b.extend_from_slice(b",\"patience\":");
    write_json_num(b, patience as f64);
    b.push(b'}');
    Ok(200)
}

/// What the pinned-session read found.
enum NextState {
    AlreadyDone,
    Ask { user: usize, objective: usize, arm: usize },
}

fn next_item(
    state: &Arc<ServerState>,
    ws: &mut RequestWorkspace,
    id: u64,
) -> Result<u16, HttpError> {
    // Stage the query into the caller's buffers under the shard lock and
    // *pin* the session: the TTL sweeper must not evict it while the
    // scheduler round-trip is in flight (the round-trip can outlast a
    // short TTL, and losing the session mid-request would drop the
    // give-up record below).  The pin is taken under the same lock as
    // the read, so there is no evict window in between.
    let caller = &mut ws.caller;
    let (pin, staged) = state
        .sessions
        .pin_with(id, |s, arm| {
            if s.is_done() {
                NextState::AlreadyDone
            } else {
                let q = s.query();
                caller.history_mut().extend_from_slice(q.history);
                caller.path_mut().extend_from_slice(q.path);
                NextState::Ask { user: q.user, objective: q.objective, arm }
            }
        })
        .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?;
    let b = &mut ws.body;
    match staged {
        NextState::AlreadyDone => {
            // Nothing was staged; release the pin and report the closed
            // session (clearing is defensive — the buffers are empty).
            caller.history_mut().clear();
            caller.path_mut().clear();
            drop(pin);
            b.extend_from_slice(b"{\"item\":null,\"done\":true}");
        }
        NextState::Ask { user, objective, arm } => {
            // Ride the session's context cache along with the request:
            // the worker extends (or rebuilds) it and hands it back, and
            // it is parked again below while the session is still pinned
            // (so the slot cannot have been swept mid-flight).
            if state.sessions.cache_enabled() {
                caller.stage_cache(state.sessions.take_cache(id));
            }
            caller.set_arm(arm);
            let round_trip = Instant::now();
            let answer = state.engine.next_item_with(caller, user, objective);
            state.split.metrics(arm).record_request(round_trip.elapsed());
            if let Some(cache) = caller.take_cache() {
                state.sessions.put_cache(id, cache);
            }
            let cached = usize::from(state.sessions.cache_enabled());
            let encode_started = Instant::now();
            match answer {
                Some(item) => {
                    b.extend_from_slice(b"{\"item\":");
                    write_json_num(b, item as f64);
                    b.extend_from_slice(b",\"done\":false}");
                }
                None => {
                    // Still pinned, so the session cannot have been
                    // evicted between the round-trip and this record.
                    state.sessions.with(id, |s| {
                        if !s.is_done() {
                            s.record_give_up();
                        }
                    });
                    b.extend_from_slice(b"{\"item\":null,\"done\":true}");
                }
            }
            state.engine.metrics().stages.encode[arm.min(NUM_ARMS - 1)][cached]
                .record(encode_started.elapsed());
            drop(pin);
        }
    }
    Ok(200)
}

fn feedback(
    state: &Arc<ServerState>,
    ws: &mut RequestWorkspace,
    id: u64,
    body: &[u8],
) -> Result<u16, HttpError> {
    let parsed = parse_body(&mut ws.slab, body)?;
    let item = field_usize(&parsed, "item")?;
    let accepted = parsed
        .get("accepted")
        .and_then(|v| v.as_bool())
        .ok_or_else(|| HttpError::bad_request("missing or invalid 'accepted'"))?;
    // Same door-check as session creation: a recorded item enters the
    // session's virtual path and reaches embedding lookups on the next
    // proposal, so out-of-catalogue ids are rejected here, not deep in a
    // forward pass.
    if let Some(n) = state.engine.registry().current().num_items {
        if item >= n {
            return Err(HttpError::bad_request(format!(
                "item {item} outside catalogue of {n} items"
            )));
        }
    }
    let online = state.online.read().clone();
    let b = &mut ws.body;
    state
        .sessions
        .with_arm(id, |s, arm| {
            if s.is_done() {
                return Err(HttpError::bad_request(format!("session {id} is already closed")));
            }
            // Log the replay event *before* recording: the event's
            // context is the user's state at proposal time, the item is
            // what the arm proposed, and `accepted` is the ground-truth
            // label the online trainer learns from.  (This allocates the
            // context vector — the feedback route is off the
            // allocation-free steady-state path, and only pays it when
            // online training is on.)
            if let Some(handle) = &online {
                handle.replay().push(FeedbackEvent {
                    user: s.user(),
                    context: s.context(),
                    item,
                    accepted,
                });
            }
            s.record(item, accepted);
            state.split.metrics(arm).record_feedback(accepted);
            write_session_payload(b, id, s);
            Ok(200)
        })
        .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?
}

fn set_split(
    state: &Arc<ServerState>,
    ws: &mut RequestWorkspace,
    body: &[u8],
) -> Result<u16, HttpError> {
    let parsed = parse_body(&mut ws.slab, body)?;
    let weights_field = parsed
        .get("weights")
        .filter(|w| w.is_arr())
        .ok_or_else(|| HttpError::bad_request("missing or invalid 'weights'"))?;
    let mut weights = Vec::with_capacity(NUM_ARMS);
    for w in weights_field.children() {
        weights.push(w.as_f64().ok_or_else(|| HttpError::bad_request("invalid weight entry"))?);
    }
    let normalised = state.split.set_weights(&weights).map_err(HttpError::bad_request)?;
    write_weights_payload(&mut ws.body, &normalised);
    Ok(200)
}

fn write_weights_payload(b: &mut Vec<u8>, weights: &[f64; NUM_ARMS]) {
    b.extend_from_slice(b"{\"weights\":[");
    for (i, w) in weights.iter().enumerate() {
        if i > 0 {
            b.push(b',');
        }
        write_json_num(b, *w);
    }
    b.extend_from_slice(b"]}");
}

fn promote(state: &Arc<ServerState>, ws: &mut RequestWorkspace) -> Result<u16, HttpError> {
    // The canary won: stable takes its (snapshot, version) pair and all
    // traffic flows to the stable arm again.
    let version = state.engine.registry().promote(CANARY_ARM);
    let mut weights = [0.0; NUM_ARMS];
    weights[0] = 1.0;
    let _ = state.split.set_weights(&weights);
    let b = &mut ws.body;
    b.extend_from_slice(b"{\"version\":");
    write_json_num(b, version as f64);
    b.extend_from_slice(b",\"promoted\":true}");
    Ok(200)
}

fn rollback(state: &Arc<ServerState>, ws: &mut RequestWorkspace) -> Result<u16, HttpError> {
    // The canary lost: reset it to the stable snapshot and drain its
    // traffic share.
    let version = state.engine.registry().rollback();
    let mut weights = [0.0; NUM_ARMS];
    weights[0] = 1.0;
    let _ = state.split.set_weights(&weights);
    let b = &mut ws.body;
    b.extend_from_slice(b"{\"version\":");
    write_json_num(b, version as f64);
    b.extend_from_slice(b",\"rolled_back\":true}");
    Ok(200)
}

fn force_publish(state: &Arc<ServerState>, ws: &mut RequestWorkspace) -> Result<u16, HttpError> {
    // Clone the handle out of the guard first: a slow publish tick must
    // not hold the online lock (stats keep answering meanwhile).
    let Some(handle) = state.online.read().clone() else {
        return Err(HttpError::new(501, "online training not enabled on this server"));
    };
    match handle.force_publish(Duration::from_secs(30)) {
        Ok(version) => {
            let b = &mut ws.body;
            b.extend_from_slice(b"{\"version\":");
            write_json_num(b, version as f64);
            b.extend_from_slice(b",\"arm\":");
            write_json_num(b, CANARY_ARM as f64);
            b.push(b'}');
            Ok(200)
        }
        Err(ForcePublishError::Dead) => {
            Err(HttpError::new(503, "online trainer has died; serving static snapshots"))
        }
        Err(ForcePublishError::Timeout) => {
            Err(HttpError::new(503, "online trainer did not publish within the timeout"))
        }
    }
}

fn swap_snapshot(
    state: &Arc<ServerState>,
    ws: &mut RequestWorkspace,
    body: &[u8],
) -> Result<u16, HttpError> {
    let Some(loader) = &state.loader else {
        return Err(HttpError::new(501, "snapshot loading not configured on this server"));
    };
    let parsed = parse_body(&mut ws.slab, body)?;
    let path = parsed
        .get("path")
        .and_then(|v| v.as_str())
        .ok_or_else(|| HttpError::bad_request("missing or invalid 'path'"))?;
    let snapshot =
        loader(path).map_err(|e| HttpError::bad_request(format!("cannot load {path}: {e}")))?;
    let label = snapshot.label.clone();
    let version = state.engine.registry().swap(snapshot);
    let b = &mut ws.body;
    b.extend_from_slice(b"{\"version\":");
    write_json_num(b, version as f64);
    b.extend_from_slice(b",\"label\":");
    write_json_str(b, &label);
    b.push(b'}');
    Ok(200)
}
