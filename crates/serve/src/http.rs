//! Minimal HTTP/1.1 JSON frontend on `std::net::TcpListener`.
//!
//! One thread per connection, `Connection: close` semantics, hand-rolled
//! request parsing — deliberately the smallest server that can put the
//! micro-batching engine behind a socket without third-party
//! dependencies.  The protocol:
//!
//! | Route                           | Body → Reply |
//! |---------------------------------|--------------|
//! | `GET /healthz`                  | → `{ok, snapshot, version}` |
//! | `GET /v1/stats`                 | → engine counters, session count, snapshot info |
//! | `POST /v1/session`              | `{user, history, objective, max_len?, patience?}` → `{session_id}` |
//! | `GET /v1/session/{id}`          | → session state summary |
//! | `POST /v1/session/{id}/next`    | → `{item, done}` (blocks through the scheduler) |
//! | `POST /v1/session/{id}/feedback`| `{item, accepted}` → `{done, reached_objective, …}` |
//! | `DELETE /v1/session/{id}`       | → final outcome |
//! | `POST /v1/admin/swap`           | `{path}` → `{version, label}` (hot-swap) |
//! | `POST /v1/admin/shutdown`       | → `{ok}` and the accept loop exits |
//!
//! Item ids in requests are door-checked against the snapshot's
//! catalogue (400 on out-of-range, instead of a panic deep in an
//! embedding lookup).  User ids are deliberately *not* bounded: the IRN
//! aliases unseen users into its trained table (`u % num_users`, the
//! same cold-start rule its scalar reference path applies everywhere),
//! so a brand-new user is served the impressionability profile of an
//! existing one rather than rejected.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use irs_core::InteractiveSession;

use crate::json::JsonValue;
use crate::scheduler::Engine;
use crate::session::SessionStore;
use crate::snapshot::SnapshotLoader;

/// Frontend configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Default accepted-items budget for new sessions.
    pub max_len: usize,
    /// Default per-step rejection patience for new sessions.
    pub patience: usize,
    /// Session-store shard count.
    pub session_shards: usize,
    /// Cap on live sessions; `POST /v1/session` answers 429 at the cap
    /// (clients free slots with `DELETE /v1/session/{id}`).  The hard
    /// backstop behind TTL eviction.
    pub max_sessions: usize,
    /// Cap on concurrent connection-handler threads; excess connections
    /// are answered 503 inline on the accept thread.
    pub max_connections: usize,
    /// Idle time after which an abandoned session is evicted by the
    /// background sweeper (`None` disables sweeping; sessions then live
    /// until `DELETE` or shutdown).  `irs serve` exposes this as
    /// `--session-ttl-s`.
    pub session_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_len: 20,
            patience: 3,
            session_shards: 16,
            max_sessions: 65_536,
            max_connections: 256,
            session_ttl: None,
        }
    }
}

struct ServerState {
    engine: Arc<Engine>,
    sessions: SessionStore,
    loader: Option<SnapshotLoader>,
    config: ServerConfig,
    shutdown: AtomicBool,
    started: Instant,
    /// Sessions aged out by the TTL sweeper since startup.
    evicted: std::sync::atomic::AtomicU64,
    /// Live connection-handler threads; joined before `run` returns so
    /// in-flight responses (the shutdown 200 included) are written
    /// before the process can exit.
    handlers: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A bound (but not yet running) HTTP server.
pub struct HttpServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle for driving a running server from another thread (tests, the
/// load generator): the bound address plus a way to request shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit (same effect as `POST
    /// /v1/admin/shutdown`).
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }

    /// Sessions evicted by the TTL sweeper since startup.
    pub fn evicted_sessions(&self) -> u64 {
        self.state.evicted.load(Ordering::Relaxed)
    }

    /// Currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.state.sessions.len()
    }
}

impl HttpServer {
    /// Bind the frontend.  `loader` enables `POST /v1/admin/swap`; without
    /// it the route answers 501.
    pub fn bind(
        addr: &str,
        engine: Arc<Engine>,
        loader: Option<SnapshotLoader>,
        config: ServerConfig,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            engine,
            sessions: SessionStore::new(config.session_shards),
            loader,
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            evicted: std::sync::atomic::AtomicU64::new(0),
            handlers: parking_lot::Mutex::new(Vec::new()),
        });
        Ok(HttpServer { listener, state })
    }

    /// The bound address (use port 0 in `bind` for an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle usable from other threads while `run` blocks.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle { addr: self.listener.local_addr()?, state: self.state.clone() })
    }

    /// Serve until a shutdown request arrives, then return.  The engine
    /// is left running (the caller owns it and decides when to stop the
    /// scheduler).
    ///
    /// When [`ServerConfig::session_ttl`] is set, a background sweeper
    /// ages out sessions idle past the TTL (checking every quarter-TTL,
    /// clamped to 10 ms – 60 s, napping in short slices so shutdown is
    /// never delayed by more than ~250 ms) so abandoned sessions stop
    /// counting against `max_sessions`; evictions are tallied in the
    /// stats.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let sweeper = self.state.config.session_ttl.map(|ttl| {
            let state = self.state.clone();
            std::thread::spawn(move || {
                let interval = (ttl / 4).clamp(Duration::from_millis(10), Duration::from_secs(60));
                let nap_cap = Duration::from_millis(250);
                'sweeping: loop {
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break 'sweeping;
                        }
                        let nap = (interval - slept).min(nap_cap);
                        std::thread::sleep(nap);
                        slept += nap;
                    }
                    let evicted = state.sessions.sweep_older_than(ttl);
                    if evicted > 0 {
                        state.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
                    }
                }
            })
        });
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let state = self.state.clone();
            {
                let mut handlers = state.handlers.lock();
                // Bounded by concurrent connections: finished handles
                // are pruned as new ones arrive, and connections beyond
                // the cap are turned away inline instead of each taking
                // a thread (and its read-timeout window) of their own.
                handlers.retain(|h| !h.is_finished());
                if handlers.len() >= state.config.max_connections {
                    drop(handlers);
                    let _ = write_response(
                        &mut stream,
                        503,
                        &JsonValue::obj(vec![("error", JsonValue::from("server busy"))]),
                    );
                    continue;
                }
                let handle = {
                    let state = state.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &state, addr);
                    })
                };
                handlers.push(handle);
            }
        }
        // Drain in-flight handlers so every accepted request — the
        // shutdown 200 included — gets its response before we return
        // and the process can exit.
        let handlers: Vec<_> = self.state.handlers.lock().drain(..).collect();
        for handle in handlers {
            let _ = handle.join();
        }
        if let Some(sweeper) = sweeper {
            let _ = sweeper.join();
        }
        Ok(())
    }
}

/// Unblock a listener waiting in `accept` after the shutdown flag is set.
fn wake_listener(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

// ---------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Protocol errors carrying the HTTP status to answer with.
struct HttpError {
    status: u16,
    message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self::new(404, message)
    }
}

fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    // Hard cap on bytes read per request: without it a newline-free
    // header line would grow the line buffer unboundedly — the per-line
    // budget below only triggers once a line terminates.
    let limit = (MAX_HEADER_BYTES + MAX_BODY_BYTES) as u64;
    let mut reader = BufReader::new(Read::take(&mut *stream, limit));

    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None); // peer closed without sending anything
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Ok(None);
    }

    let mut content_length = 0usize;
    let mut header_bytes = request_line.len();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "header section too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

fn write_response(stream: &mut TcpStream, status: u16, body: &JsonValue) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let payload = body.to_string();
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()
}

fn handle_connection(
    mut stream: TcpStream,
    state: &Arc<ServerState>,
    addr: SocketAddr,
) -> io::Result<()> {
    let Some(request) = read_request(&mut stream)? else {
        return Ok(()); // wake-up / empty connection
    };
    let (status, body) = match route(&request, state, addr) {
        Ok(value) => (200, value),
        Err(e) => (e.status, JsonValue::obj(vec![("error", JsonValue::Str(e.message))])),
    };
    write_response(&mut stream, status, &body)
}

fn parse_body(request: &Request) -> Result<JsonValue, HttpError> {
    if request.body.is_empty() {
        return Ok(JsonValue::Obj(Vec::new()));
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpError::bad_request("body is not UTF-8"))?;
    JsonValue::parse(text).map_err(|e| HttpError::bad_request(format!("invalid JSON: {e}")))
}

fn field_usize(body: &JsonValue, key: &str) -> Result<usize, HttpError> {
    body.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| HttpError::bad_request(format!("missing or invalid '{key}'")))
}

fn route(
    request: &Request,
    state: &Arc<ServerState>,
    addr: SocketAddr,
) -> Result<JsonValue, HttpError> {
    // Route on the path alone; query strings are accepted and ignored
    // (health probes commonly append `?...`).
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let snap = state.engine.registry().current();
            Ok(JsonValue::obj(vec![
                ("ok", JsonValue::Bool(true)),
                ("snapshot", JsonValue::Str(snap.label.clone())),
                ("version", JsonValue::num(state.engine.registry().version() as usize)),
            ]))
        }
        ("GET", ["v1", "stats"]) => Ok(stats_payload(state)),
        ("POST", ["v1", "session"]) => create_session(request, state),
        ("GET", ["v1", "session", id]) => {
            let id = parse_session_id(id)?;
            state
                .sessions
                .with(id, |s| session_payload(id, s))
                .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))
        }
        ("POST", ["v1", "session", id, "next"]) => next_item(parse_session_id(id)?, state),
        ("POST", ["v1", "session", id, "feedback"]) => {
            feedback(parse_session_id(id)?, request, state)
        }
        ("DELETE", ["v1", "session", id]) => {
            let id = parse_session_id(id)?;
            let session = state
                .sessions
                .remove(id)
                .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?;
            Ok(session_payload(id, &session))
        }
        ("POST", ["v1", "admin", "swap"]) => swap_snapshot(request, state),
        ("POST", ["v1", "admin", "shutdown"]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop from a detached thread so the
            // response reaches the client first.
            std::thread::spawn(move || wake_listener(addr));
            Ok(JsonValue::obj(vec![("ok", JsonValue::Bool(true))]))
        }
        // Known paths reached with the wrong verb are 405; everything
        // else (typo'd routes included) is 404.
        (_, ["healthz"])
        | (_, ["v1", "stats"])
        | (_, ["v1", "session"])
        | (_, ["v1", "session", _])
        | (_, ["v1", "session", _, "next" | "feedback"])
        | (_, ["v1", "admin", "swap" | "shutdown"]) => {
            Err(HttpError::new(405, "method not allowed"))
        }
        _ => Err(HttpError::not_found(format!("no route for {}", request.path))),
    }
}

fn parse_session_id(raw: &str) -> Result<u64, HttpError> {
    raw.parse().map_err(|_| HttpError::bad_request(format!("invalid session id '{raw}'")))
}

fn session_payload(id: u64, session: &InteractiveSession) -> JsonValue {
    let outcome = session.outcome();
    JsonValue::obj(vec![
        ("session_id", JsonValue::num(id as usize)),
        ("user", JsonValue::num(session.user())),
        ("objective", JsonValue::num(session.objective())),
        ("accepted", JsonValue::Arr(outcome.accepted.iter().map(|&i| JsonValue::num(i)).collect())),
        ("rejected", JsonValue::Arr(outcome.rejected.iter().map(|&i| JsonValue::num(i)).collect())),
        ("proposals", JsonValue::num(outcome.proposals)),
        ("reached_objective", JsonValue::Bool(outcome.reached_objective)),
        ("done", JsonValue::Bool(session.is_done())),
    ])
}

fn stats_payload(state: &Arc<ServerState>) -> JsonValue {
    let stats = state.engine.stats();
    let snap = state.engine.registry().current();
    let policy = state.engine.policy();
    JsonValue::obj(vec![
        ("requests", JsonValue::num(stats.requests as usize)),
        ("batches", JsonValue::num(stats.batches as usize)),
        ("mean_batch", JsonValue::Num(stats.mean_batch())),
        ("gave_up", JsonValue::num(stats.gave_up as usize)),
        ("sessions", JsonValue::num(state.sessions.len())),
        (
            "evicted_sessions",
            JsonValue::num(state.evicted.load(std::sync::atomic::Ordering::Relaxed) as usize),
        ),
        ("snapshot", JsonValue::Str(snap.label.clone())),
        ("snapshot_version", JsonValue::num(state.engine.registry().version() as usize)),
        ("snapshot_params", JsonValue::num(snap.num_scalars())),
        ("max_batch", JsonValue::num(policy.max_batch)),
        ("max_wait_us", JsonValue::num(policy.max_wait.as_micros() as usize)),
        ("workers", JsonValue::num(policy.workers)),
        ("uptime_ms", JsonValue::num(state.started.elapsed().as_millis() as usize)),
    ])
}

fn create_session(request: &Request, state: &Arc<ServerState>) -> Result<JsonValue, HttpError> {
    // Best-effort cap (checked outside the shard locks): bounds the
    // memory abandoned sessions can pin.
    if state.sessions.len() >= state.config.max_sessions {
        return Err(HttpError::new(
            429,
            format!(
                "session limit {} reached; DELETE finished sessions",
                state.config.max_sessions
            ),
        ));
    }
    let body = parse_body(request)?;
    let user = field_usize(&body, "user")?;
    let objective = field_usize(&body, "objective")?;
    let history = body
        .get("history")
        .map(|h| h.as_usize_arr().ok_or_else(|| HttpError::bad_request("invalid 'history'")))
        .transpose()?
        .unwrap_or_default();
    let max_len = body
        .get("max_len")
        .map(|v| v.as_usize().ok_or_else(|| HttpError::bad_request("invalid 'max_len'")))
        .transpose()?
        .unwrap_or(state.config.max_len);
    let patience = body
        .get("patience")
        .map(|v| v.as_usize().ok_or_else(|| HttpError::bad_request("invalid 'patience'")))
        .transpose()?
        .unwrap_or(state.config.patience);

    // Reject out-of-catalogue ids up front when the snapshot knows its
    // catalogue (an in-range check at the door instead of a panic deep in
    // an embedding lookup).
    if let Some(n) = state.engine.registry().current().num_items {
        if objective >= n {
            return Err(HttpError::bad_request(format!(
                "objective {objective} outside catalogue of {n} items"
            )));
        }
        if let Some(&bad) = history.iter().find(|&&i| i >= n) {
            return Err(HttpError::bad_request(format!(
                "history item {bad} outside catalogue of {n} items"
            )));
        }
    }

    let id =
        state.sessions.insert(InteractiveSession::new(user, history, objective, max_len, patience));
    Ok(JsonValue::obj(vec![
        ("session_id", JsonValue::num(id as usize)),
        ("max_len", JsonValue::num(max_len)),
        ("patience", JsonValue::num(patience)),
    ]))
}

fn next_item(id: u64, state: &Arc<ServerState>) -> Result<JsonValue, HttpError> {
    // Clone the query state under the shard lock, release it for the
    // (blocking) scheduler round-trip, then reacquire only if the
    // recommender gave up.
    let query = state
        .sessions
        .with(id, |s| {
            if s.is_done() {
                None
            } else {
                let q = s.query();
                Some((q.user, q.history.to_vec(), q.objective, q.path.to_vec()))
            }
        })
        .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?;
    let Some((user, history, objective, path)) = query else {
        return Ok(JsonValue::obj(vec![
            ("item", JsonValue::Null),
            ("done", JsonValue::Bool(true)),
        ]));
    };
    let answer = state.engine.next_item(user, history, objective, path);
    match answer {
        Some(item) => Ok(JsonValue::obj(vec![
            ("item", JsonValue::num(item)),
            ("done", JsonValue::Bool(false)),
        ])),
        None => {
            state.sessions.with(id, |s| {
                if !s.is_done() {
                    s.record_give_up();
                }
            });
            Ok(JsonValue::obj(vec![("item", JsonValue::Null), ("done", JsonValue::Bool(true))]))
        }
    }
}

fn feedback(id: u64, request: &Request, state: &Arc<ServerState>) -> Result<JsonValue, HttpError> {
    let body = parse_body(request)?;
    let item = field_usize(&body, "item")?;
    let accepted = body
        .get("accepted")
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| HttpError::bad_request("missing or invalid 'accepted'"))?;
    // Same door-check as session creation: a recorded item enters the
    // session's virtual path and reaches embedding lookups on the next
    // proposal, so out-of-catalogue ids are rejected here, not deep in a
    // forward pass.
    if let Some(n) = state.engine.registry().current().num_items {
        if item >= n {
            return Err(HttpError::bad_request(format!(
                "item {item} outside catalogue of {n} items"
            )));
        }
    }
    state
        .sessions
        .with(id, |s| {
            if s.is_done() {
                return Err(HttpError::bad_request(format!("session {id} is already closed")));
            }
            s.record(item, accepted);
            Ok(session_payload(id, s))
        })
        .ok_or_else(|| HttpError::not_found(format!("unknown session {id}")))?
}

fn swap_snapshot(request: &Request, state: &Arc<ServerState>) -> Result<JsonValue, HttpError> {
    let Some(loader) = &state.loader else {
        return Err(HttpError::new(501, "snapshot loading not configured on this server"));
    };
    let body = parse_body(request)?;
    let path = body
        .get("path")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| HttpError::bad_request("missing or invalid 'path'"))?;
    let snapshot =
        loader(path).map_err(|e| HttpError::bad_request(format!("cannot load {path}: {e}")))?;
    let label = snapshot.label.clone();
    let version = state.engine.registry().swap(snapshot);
    Ok(JsonValue::obj(vec![
        ("version", JsonValue::num(version as usize)),
        ("label", JsonValue::Str(label)),
    ]))
}
