//! Online learning: feedback replay buffer + background trainer.
//!
//! Closing the loop the paper's interactive protocol implies: the HTTP
//! frontend logs every `(user, context, item, accepted)` feedback event
//! into a bounded [`ReplayBuffer`]; a background trainer thread
//! periodically folds the buffer into incremental training steps on a
//! private *student* model and publishes the result to the canary arm of
//! the [`SnapshotRegistry`].  Live traffic assigned to the canary then
//! scores against the freshly-trained weights, and an operator (or the
//! CI canary pipeline) promotes or rolls back on the per-arm metrics.
//!
//! ## Robustness contract
//!
//! A panicking or slow trainer can never wedge or corrupt serving:
//!
//! * the trainer owns a **cloned parameter set** (the student) — the
//!   served snapshots are immutable, and a publish is one atomic
//!   registry slot replacement of a *freshly deserialised* model;
//! * every tick runs under `catch_unwind`; a panic increments a visible
//!   counter, marks the trainer dead, wakes any force-publish waiters
//!   with an error, and leaves the server serving static snapshots;
//! * the request path never waits on the trainer — its only shared
//!   state is the replay buffer's mutex, held for a push or a bounded
//!   copy;
//! * shutdown joins the trainer with a bounded wait and *detaches* a
//!   stalled thread instead of hanging the process.
//!
//! The trait seam ([`OnlineLearner`]) exists so tests can inject
//! deliberately panicking or stalling learners; [`IrnOnlineLearner`] is
//! the production implementation around
//! [`irs_core::IncrementalTrainer`].  Learners are built *inside* the
//! trainer thread from a `Send` factory (the tape a trainer records is
//! not `Send`; the model it is built from is).

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use irs_core::{IncrementalTrainer, Irn};
use irs_data::split::SubSeq;
use irs_obs::{log_error, log_warn};
use parking_lot::{Condvar, Mutex};

use crate::snapshot::{ModelSnapshot, SnapshotRegistry, CANARY_ARM};

/// One logged feedback interaction, exactly what `POST
/// /v1/session/{id}/feedback` observed.
#[derive(Debug, Clone)]
pub struct FeedbackEvent {
    /// The session's user.
    pub user: usize,
    /// The user's context *at proposal time*: history ⊕ accepted path.
    pub context: Vec<usize>,
    /// The proposed item being reacted to.
    pub item: usize,
    /// Whether the user accepted it.
    pub accepted: bool,
}

/// Bounded drop-oldest event buffer with replay semantics: events stay
/// resident (and keep being folded on later ticks) until displaced by
/// newer ones, so a small burst of feedback is revisited across several
/// training ticks instead of being consumed once.
pub struct ReplayBuffer {
    inner: Mutex<VecDeque<FeedbackEvent>>,
    cap: usize,
    logged: AtomicU64,
    dropped: AtomicU64,
}

impl ReplayBuffer {
    /// A buffer holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        ReplayBuffer {
            inner: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
            cap,
            logged: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Log one event, dropping the oldest beyond the cap.
    pub fn push(&self, event: FeedbackEvent) {
        let mut inner = self.inner.lock();
        if inner.len() >= self.cap {
            inner.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.push_back(event);
        self.logged.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current contents into `out` (cleared first).  A bounded
    /// clone under the lock — the trainer folds from the copy so the
    /// request path never contends with a forward/backward pass.
    pub fn snapshot_into(&self, out: &mut Vec<FeedbackEvent>) {
        out.clear();
        let inner = self.inner.lock();
        out.extend(inner.iter().cloned());
    }

    /// Events currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events logged since startup.
    pub fn logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    /// Events displaced by the cap since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// What one fold pass consumed and produced.
#[derive(Debug, Clone, Copy)]
pub struct FoldOutcome {
    /// Training examples actually used (accepted events long enough to
    /// carry a target).
    pub examples: usize,
    /// Mean minibatch loss (`NaN` when nothing was usable).
    pub loss: f32,
}

/// The trainer thread's model seam: fold events into the student, and
/// publish the student as a servable snapshot.  Implemented by
/// [`IrnOnlineLearner`] in production and by panicking/stalling fakes in
/// the fault-injection tests.
pub trait OnlineLearner {
    /// Fold one pass over `events` into the student.
    fn fold(&mut self, events: &[FeedbackEvent]) -> FoldOutcome;
    /// Clone the student's current parameters into a fresh servable
    /// snapshot.
    fn publish(&mut self) -> io::Result<ModelSnapshot>;
}

/// Production learner: an [`IncrementalTrainer`] around a student
/// [`Irn`], publishing via the IRSP writer (serialise → deserialise a
/// fresh model, so the served snapshot shares no mutable state with the
/// student).
pub struct IrnOnlineLearner {
    trainer: IncrementalTrainer,
    published: u64,
}

impl IrnOnlineLearner {
    /// Wrap a student model (typically loaded from the same IRSP file
    /// the server booted from).
    pub fn new(student: Irn) -> Self {
        IrnOnlineLearner { trainer: IncrementalTrainer::new(student), published: 0 }
    }
}

impl OnlineLearner for IrnOnlineLearner {
    fn fold(&mut self, events: &[FeedbackEvent]) -> FoldOutcome {
        let max_len = self.trainer.model().config().max_len;
        // Accepted events become training subsequences "context ⊕ item":
        // the accepted item takes the objective slot, so the student
        // learns paths that lead to items this user actually took.
        // Rejections are logged (they shape the acceptance-rate metric)
        // but not trained on — there is no paper objective for them.
        let seqs: Vec<SubSeq> = events
            .iter()
            .filter(|e| e.accepted)
            .map(|e| {
                let mut items = Vec::with_capacity(e.context.len() + 1);
                items.extend_from_slice(&e.context);
                items.push(e.item);
                if items.len() > max_len {
                    items.drain(..items.len() - max_len);
                }
                SubSeq { user: e.user, items }
            })
            .filter(|s| s.items.len() >= 2)
            .collect();
        if seqs.is_empty() {
            return FoldOutcome { examples: 0, loss: f32::NAN };
        }
        let loss = self.trainer.fold(&seqs);
        FoldOutcome { examples: seqs.len(), loss }
    }

    fn publish(&mut self) -> io::Result<ModelSnapshot> {
        let bytes = self.trainer.snapshot_bytes()?;
        let params = irs_nn::irsp_summary(&bytes[..])?;
        let student = self.trainer.model();
        let model =
            Irn::load(&bytes[..], student.num_items(), student.num_users(), student.config())?;
        self.published += 1;
        Ok(ModelSnapshot {
            label: format!("online-{}", self.published),
            model: Box::new(model),
            params,
            num_items: Some(student.num_items()),
        })
    }
}

/// Online-trainer knobs (`irs serve --online-train --publish-every-s
/// --replay-cap`).
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Cadence of timed fold+publish ticks.
    pub publish_every: Duration,
    /// Replay-buffer capacity in events.
    pub replay_cap: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig { publish_every: Duration::from_secs(60), replay_cap: 4096 }
    }
}

/// Monotonic trainer counters, shared with `/v1/stats`.
#[derive(Default)]
struct OnlineCounters {
    folds: AtomicU64,
    examples: AtomicU64,
    publishes: AtomicU64,
    last_loss_bits: AtomicU32,
    trainer_panics: AtomicU64,
    alive: AtomicBool,
}

/// A point-in-time copy of the online-learning counters.
#[derive(Debug, Clone, Copy)]
pub struct OnlineStatsView {
    /// Feedback events logged to the replay buffer.
    pub events_logged: u64,
    /// Events displaced by the replay cap.
    pub events_dropped: u64,
    /// Events currently resident.
    pub replay_len: usize,
    /// Fold passes completed.
    pub folds: u64,
    /// Training examples consumed across all folds.
    pub examples: u64,
    /// Snapshots published to the canary arm.
    pub publishes: u64,
    /// Mean loss of the last fold (`NaN` before the first).
    pub last_loss: f32,
    /// Trainer panics caught (each one kills the trainer; serving
    /// degrades to the static snapshots).
    pub trainer_panics: u64,
    /// Whether the trainer thread is still running.
    pub trainer_alive: bool,
}

/// Why a forced publish did not return a fresh version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcePublishError {
    /// The trainer thread has died (panicked or exited).
    Dead,
    /// The trainer did not complete a tick within the timeout (stalled
    /// or severely backlogged).
    Timeout,
}

/// Force-publish handshake + shutdown signalling between the HTTP
/// frontend and the trainer thread.
struct Control {
    state: Mutex<ControlState>,
    signal: Condvar,
}

#[derive(Default)]
struct ControlState {
    /// Force-publish tickets issued.
    pending: u64,
    /// Tickets the trainer has served.
    served: u64,
    /// Canary version after the last served forced tick.
    last_version: u64,
    stop: bool,
    dead: bool,
}

/// Handle on a running online trainer: log events through
/// [`OnlineHandle::replay`], force a publish tick, read counters, stop.
pub struct OnlineHandle {
    replay: Arc<ReplayBuffer>,
    counters: Arc<OnlineCounters>,
    control: Arc<Control>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl OnlineHandle {
    /// Spawn the trainer thread.  `factory` builds the learner *on* the
    /// trainer thread (learners need not be `Send`; the factory must
    /// be).  A panicking factory counts as a trainer panic: the server
    /// keeps serving statically.
    pub fn start<F>(registry: Arc<SnapshotRegistry>, config: OnlineConfig, factory: F) -> Self
    where
        F: FnOnce() -> Box<dyn OnlineLearner> + Send + 'static,
    {
        let replay = Arc::new(ReplayBuffer::new(config.replay_cap));
        let counters = Arc::new(OnlineCounters {
            last_loss_bits: AtomicU32::new(f32::NAN.to_bits()),
            alive: AtomicBool::new(true),
            ..Default::default()
        });
        let control = Arc::new(Control {
            state: Mutex::new(ControlState::default()),
            signal: Condvar::new(),
        });
        let thread = {
            let replay = replay.clone();
            let counters = counters.clone();
            let control = control.clone();
            std::thread::Builder::new()
                .name("irs-online-trainer".into())
                .spawn(move || {
                    trainer_loop(&registry, &replay, &counters, &control, &config, factory)
                })
                .expect("spawn online trainer")
        };
        OnlineHandle { replay, counters, control, thread: Mutex::new(Some(thread)) }
    }

    /// The buffer the frontend logs feedback events into.
    pub fn replay(&self) -> &Arc<ReplayBuffer> {
        &self.replay
    }

    /// Ask the trainer for an immediate fold+publish tick and wait (up
    /// to `timeout`) for the new canary version.  The wait parks on a
    /// condvar — a stalled trainer costs the caller the timeout, never
    /// a wedge.
    pub fn force_publish(&self, timeout: Duration) -> Result<u64, ForcePublishError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.control.state.lock();
        if state.dead {
            return Err(ForcePublishError::Dead);
        }
        state.pending += 1;
        let ticket = state.pending;
        self.control.signal.notify_all();
        while state.served < ticket {
            if state.dead {
                return Err(ForcePublishError::Dead);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ForcePublishError::Timeout);
            }
            if self.control.signal.wait_until(&mut state, deadline).timed_out() {
                return if state.served >= ticket {
                    Ok(state.last_version)
                } else if state.dead {
                    Err(ForcePublishError::Dead)
                } else {
                    Err(ForcePublishError::Timeout)
                };
            }
        }
        Ok(state.last_version)
    }

    /// A point-in-time copy of every online-learning counter.
    pub fn stats(&self) -> OnlineStatsView {
        OnlineStatsView {
            events_logged: self.replay.logged(),
            events_dropped: self.replay.dropped(),
            replay_len: self.replay.len(),
            folds: self.counters.folds.load(Ordering::Relaxed),
            examples: self.counters.examples.load(Ordering::Relaxed),
            publishes: self.counters.publishes.load(Ordering::Relaxed),
            last_loss: f32::from_bits(self.counters.last_loss_bits.load(Ordering::Relaxed)),
            trainer_panics: self.counters.trainer_panics.load(Ordering::Relaxed),
            trainer_alive: self.counters.alive.load(Ordering::Relaxed),
        }
    }

    /// Signal the trainer to stop and join it with a bounded wait; a
    /// thread stalled inside a learner is detached (the robustness
    /// contract: shutdown must not hang on a stuck trainer).  Idempotent.
    pub fn stop(&self) {
        {
            let mut state = self.control.state.lock();
            state.stop = true;
        }
        self.control.signal.notify_all();
        let Some(thread) = self.thread.lock().take() else { return };
        let deadline = Instant::now() + Duration::from_secs(2);
        while !thread.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if thread.is_finished() {
            let _ = thread.join();
        } else {
            log_warn!("online", "trainer stalled at shutdown; detaching it");
            drop(thread); // detach
        }
    }
}

impl Drop for OnlineHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn trainer_loop<F>(
    registry: &SnapshotRegistry,
    replay: &ReplayBuffer,
    counters: &OnlineCounters,
    control: &Control,
    config: &OnlineConfig,
    factory: F,
) where
    F: FnOnce() -> Box<dyn OnlineLearner>,
{
    let die = |panics: &AtomicU64, bump: bool| {
        if bump {
            panics.fetch_add(1, Ordering::Relaxed);
        }
        counters.alive.store(false, Ordering::Relaxed);
        let mut state = control.state.lock();
        state.dead = true;
        control.signal.notify_all();
    };

    // The learner is built on this thread (its training tape is not
    // `Send`); a factory panic — e.g. a corrupt model file — degrades to
    // static serving like any other trainer panic.
    let mut learner = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(factory)) {
        Ok(l) => l,
        Err(_) => {
            log_error!("online", "learner construction panicked; serving statically");
            die(&counters.trainer_panics, true);
            return;
        }
    };

    let mut staged: Vec<FeedbackEvent> = Vec::new();
    // Whether a fold has moved the student since the last publish —
    // timed ticks skip publishing otherwise, so an idle server does not
    // churn canary versions (and cache generations) republishing
    // identical weights.
    let mut dirty = false;
    loop {
        let forced_up_to = {
            let mut state = control.state.lock();
            let deadline = Instant::now() + config.publish_every;
            while !state.stop && state.pending <= state.served {
                if control.signal.wait_until(&mut state, deadline).timed_out() {
                    break;
                }
            }
            if state.stop {
                break;
            }
            (state.pending > state.served).then_some(state.pending)
        };
        let forced = forced_up_to.is_some();
        replay.snapshot_into(&mut staged);
        let tick = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if !staged.is_empty() {
                let outcome = learner.fold(&staged);
                counters.folds.fetch_add(1, Ordering::Relaxed);
                counters.examples.fetch_add(outcome.examples as u64, Ordering::Relaxed);
                counters.last_loss_bits.store(outcome.loss.to_bits(), Ordering::Relaxed);
                if outcome.examples > 0 {
                    dirty = true;
                }
            }
            if dirty || forced {
                match learner.publish() {
                    Ok(snapshot) => {
                        let version = registry.publish(CANARY_ARM, snapshot);
                        counters.publishes.fetch_add(1, Ordering::Relaxed);
                        dirty = false;
                        Some(version)
                    }
                    Err(e) => {
                        log_error!("online", "publish failed: {e}");
                        None
                    }
                }
            } else {
                None
            }
        }));
        match tick {
            Ok(published) => {
                if let Some(ticket) = forced_up_to {
                    let mut state = control.state.lock();
                    state.served = ticket;
                    state.last_version =
                        published.unwrap_or_else(|| registry.arm_version(CANARY_ARM));
                    control.signal.notify_all();
                }
            }
            Err(_) => {
                log_error!("online", "trainer panicked; serving statically from here on");
                die(&counters.trainer_panics, true);
                return;
            }
        }
    }
    die(&counters.trainer_panics, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::InfluenceRecommender;
    use irs_data::{ItemId, UserId};

    struct Fixed(ItemId);
    impl InfluenceRecommender for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            _objective: ItemId,
            _path: &[ItemId],
        ) -> Option<ItemId> {
            Some(self.0)
        }
    }

    fn registry() -> Arc<SnapshotRegistry> {
        Arc::new(SnapshotRegistry::new(ModelSnapshot::in_memory("base", Box::new(Fixed(1)))))
    }

    fn event(accepted: bool) -> FeedbackEvent {
        FeedbackEvent { user: 0, context: vec![1, 2], item: 3, accepted }
    }

    /// Counts folds/publishes; versions its published snapshots.
    struct CountingLearner {
        folds: usize,
    }
    impl OnlineLearner for CountingLearner {
        fn fold(&mut self, events: &[FeedbackEvent]) -> FoldOutcome {
            self.folds += 1;
            FoldOutcome { examples: events.iter().filter(|e| e.accepted).count(), loss: 0.5 }
        }
        fn publish(&mut self) -> io::Result<ModelSnapshot> {
            Ok(ModelSnapshot::in_memory(format!("fold-{}", self.folds), Box::new(Fixed(7))))
        }
    }

    struct PanickingLearner;
    impl OnlineLearner for PanickingLearner {
        fn fold(&mut self, _events: &[FeedbackEvent]) -> FoldOutcome {
            panic!("injected trainer fault");
        }
        fn publish(&mut self) -> io::Result<ModelSnapshot> {
            unreachable!("fold panics first");
        }
    }

    #[test]
    fn replay_buffer_drops_oldest_beyond_cap() {
        let buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(FeedbackEvent { user: i, context: vec![], item: i, accepted: true });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.logged(), 5);
        assert_eq!(buf.dropped(), 2);
        let mut out = Vec::new();
        buf.snapshot_into(&mut out);
        assert_eq!(out.iter().map(|e| e.item).collect::<Vec<_>>(), vec![2, 3, 4]);
        // Snapshot copies; the buffer keeps its events (replay semantics).
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn force_publish_folds_and_publishes_to_the_canary() {
        let reg = registry();
        let handle = OnlineHandle::start(
            reg.clone(),
            OnlineConfig { publish_every: Duration::from_secs(3600), ..Default::default() },
            || Box::new(CountingLearner { folds: 0 }),
        );
        handle.replay().push(event(true));
        handle.replay().push(event(false));
        let v = handle.force_publish(Duration::from_secs(10)).expect("publish");
        assert_eq!(v, 2, "first publish draws global version 2");
        assert_eq!(reg.arm_version(CANARY_ARM), 2);
        assert_eq!(reg.arm_version(0), 1, "stable arm untouched");
        assert_eq!(reg.arm(CANARY_ARM).model.next_item(0, &[], 9, &[]), Some(7));
        let stats = handle.stats();
        assert_eq!(stats.folds, 1);
        assert_eq!(stats.examples, 1, "only the accepted event trains");
        assert_eq!(stats.publishes, 1);
        assert!(stats.trainer_alive);
        assert_eq!(stats.trainer_panics, 0);
        // A second forced tick re-folds the resident events and
        // publishes again under a fresh version.
        let v2 = handle.force_publish(Duration::from_secs(10)).expect("second publish");
        assert_eq!(v2, 3);
        handle.stop();
        let stats = handle.stats();
        assert!(!stats.trainer_alive, "stopped trainer reports not alive");
        assert_eq!(stats.trainer_panics, 0, "a clean stop is not a panic");
    }

    #[test]
    fn empty_buffer_timed_ticks_do_not_churn_versions() {
        let reg = registry();
        let handle = OnlineHandle::start(
            reg.clone(),
            OnlineConfig { publish_every: Duration::from_millis(20), ..Default::default() },
            || Box::new(CountingLearner { folds: 0 }),
        );
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(reg.arm_version(CANARY_ARM), 1, "nothing to train on, nothing published");
        assert_eq!(handle.stats().publishes, 0);
        handle.stop();
    }

    #[test]
    fn panicking_learner_degrades_to_static_and_is_visible() {
        let reg = registry();
        let handle = OnlineHandle::start(
            reg.clone(),
            OnlineConfig { publish_every: Duration::from_secs(3600), ..Default::default() },
            || Box::new(PanickingLearner),
        );
        handle.replay().push(event(true));
        let err = handle.force_publish(Duration::from_secs(10)).unwrap_err();
        assert_eq!(err, ForcePublishError::Dead);
        let stats = handle.stats();
        assert_eq!(stats.trainer_panics, 1);
        assert!(!stats.trainer_alive);
        assert_eq!(reg.arm_version(CANARY_ARM), 1, "no corrupt snapshot was published");
        // The buffer still accepts events (logging is independent of the
        // trainer's health), and further force requests fail fast.
        handle.replay().push(event(true));
        assert_eq!(
            handle.force_publish(Duration::from_secs(1)).unwrap_err(),
            ForcePublishError::Dead
        );
        handle.stop();
    }

    #[test]
    fn irn_learner_trains_and_publishes_loadable_snapshots() {
        use irs_core::{Irn, IrnConfig, NeuralTrainConfig};
        let seqs: Vec<SubSeq> = (0..8)
            .map(|s| SubSeq { user: s % 3, items: (0..5).map(|k| (s + k) % 8).collect() })
            .collect();
        let config = IrnConfig {
            dim: 8,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 8,
            train: NeuralTrainConfig { epochs: 1, ..Default::default() },
            ..Default::default()
        };
        let student = Irn::fit(&seqs, &[], 8, 3, &config, None);
        let mut learner = IrnOnlineLearner::new(student);
        let events: Vec<FeedbackEvent> = (0..6)
            .map(|i| FeedbackEvent {
                user: i % 3,
                context: vec![i % 8, (i + 1) % 8],
                item: (i + 2) % 8,
                accepted: i % 3 != 0,
            })
            .collect();
        let outcome = learner.fold(&events);
        assert_eq!(outcome.examples, 4, "only accepted events train");
        assert!(outcome.loss.is_finite());
        let snap = learner.publish().unwrap();
        assert_eq!(snap.label, "online-1");
        assert_eq!(snap.num_items, Some(8));
        assert!(snap.num_scalars() > 0);
        assert!(snap.model.next_item(0, &[1, 2], 5, &[]).is_some());
        // Long contexts are windowed into the model's max_len.
        let long = vec![FeedbackEvent {
            user: 0,
            context: (0..20).map(|i| i % 8).collect(),
            item: 3,
            accepted: true,
        }];
        let outcome = learner.fold(&long);
        assert_eq!(outcome.examples, 1);
        assert!(outcome.loss.is_finite());
    }
}
