//! # irs_serve — online recommendation serving
//!
//! The paper's IRN is an *interactive* recommender: it re-plans a
//! persuasion path step by step as the user accepts or rejects items.
//! This crate turns the offline engines built for that protocol
//! (`Irn::score_next_batch`, `InfluenceRecommender::next_items`) into an
//! online service for concurrent live traffic:
//!
//! * [`SessionStore`] — a sharded concurrent map of per-user
//!   [`irs_core::InteractiveSession`] state (history ⊕ accepted path,
//!   objective, rejection blocklist);
//! * [`Engine`] — a **dynamic micro-batching scheduler**: worker threads
//!   drain a bounded request queue under a max-batch-size / max-wait
//!   policy and coalesce concurrent `next_item` requests from different
//!   sessions into single batched [`InfluenceRecommender::next_items`]
//!   calls, sharing one PIM cache per model snapshot;
//! * [`SnapshotRegistry`] — atomically hot-swappable model snapshots
//!   loaded from `IRSP` files through the architecture-checked
//!   `ParamStore::load_parameters` path, so a running server picks up a
//!   retrained model without restart;
//! * [`HttpServer`] — a hand-rolled HTTP/1.1 keep-alive frontend on
//!   `std::net::TcpListener` (no third-party dependencies): a bounded
//!   worker pool plus a single readiness poller multiplex every
//!   connection (idle sessions cost a parked socket, not a thread), and
//!   each worker's reusable [`RequestWorkspace`] makes the steady-state
//!   request path allocation-free.
//!
//! ## Why micro-batching is safe
//!
//! The scheduler regroups requests arbitrarily: which sessions share a
//! forward pass depends on arrival timing.  That is unobservable in the
//! recommendations because the workspace's batched≡scalar contract makes
//! every batched score *bitwise* identical to the scalar graph path —
//! batch composition cannot leak into the results.  The scheduler-level
//! property tests in `tests/scheduler_properties.rs` pin this end to end:
//! random session mixes and arrival orders produce exactly the
//! recommendations per-session scalar `next_item` calls produce.
//!
//! [`InfluenceRecommender::next_items`]: irs_core::InfluenceRecommender::next_items

mod conn;
mod http;
mod json;
mod metrics;
mod online;
mod pool;
mod scheduler;
mod session;
mod snapshot;
mod split;
mod workspace;

pub use http::{layout_name, HttpServer, ServerConfig, ServerHandle};
pub use json::{
    write_json_num, write_json_str, JsonError, JsonRef, JsonSlab, JsonValue, MAX_DEPTH,
};
pub use metrics::ServeMetrics;
pub use online::{
    FeedbackEvent, FoldOutcome, ForcePublishError, IrnOnlineLearner, OnlineConfig, OnlineHandle,
    OnlineLearner, OnlineStatsView, ReplayBuffer,
};
pub use scheduler::{BatchPolicy, Engine, EngineCaller, StatsSnapshot};
pub use session::{SessionId, SessionPin, SessionStore};
pub use snapshot::{
    IrnArchitecture, ModelSnapshot, SnapshotLoader, SnapshotRegistry, CANARY_ARM, NUM_ARMS,
};
pub use split::{
    ArmMetrics, LatencyHistogram, TrafficSplit, ARM_WINDOW_BUCKET, ARM_WINDOW_BUCKETS,
};
pub use workspace::RequestWorkspace;
