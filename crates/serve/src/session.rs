//! Sharded concurrent session store.
//!
//! Sessions are the per-user state [`irs_core::run_interactive_session`]
//! used to own internally: the accepted path prefix, the rejection
//! blocklist and the `accepted ⊕ rejected` virtual path.  The store
//! shards them by id across independently locked maps so concurrent
//! request handlers for different sessions rarely contend, while one
//! session's transitions stay serialised behind its shard lock.
//!
//! Every access refreshes a per-session last-seen timestamp;
//! [`SessionStore::sweep_older_than`] evicts sessions idle past a TTL —
//! the frontend runs it from a background sweeper so abandoned sessions
//! stop pinning slots against the `max_sessions` cap.
//!
//! A session with a request in flight must not be swept out from under
//! that request (the model round-trip can outlast a short TTL, and losing
//! the session mid-request drops the give-up record or 404s the follow-up
//! feedback).  [`SessionStore::pin`] marks a session busy for the
//! lifetime of the returned [`SessionPin`] guard; the sweeper skips
//! pinned sessions no matter how stale their timestamp looks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use irs_core::{ContextCache, InteractiveSession};
use parking_lot::Mutex;

use crate::snapshot::NUM_ARMS;

/// Opaque session identifier handed to clients.
pub type SessionId = u64;

/// A stored session plus its idle-tracking timestamp.
struct Slot {
    session: InteractiveSession,
    last_seen: Instant,
    /// In-flight requests currently pinning this session (see
    /// [`SessionStore::pin`]); the sweeper never evicts a pinned slot.
    pins: u32,
    /// The session's incremental model state between requests (see
    /// [`SessionStore::take_cache`]); evicted with the session, or
    /// individually when the store's cache budget runs out.
    cache: Option<ContextCache>,
    /// The traffic arm the session was sticky-assigned to at creation;
    /// every request it makes scores against this arm's snapshot.
    arm: usize,
}

/// A sharded `SessionId → InteractiveSession` map with idle tracking.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<SessionId, Slot>>>,
    next_id: AtomicU64,
    /// Byte budget for stored [`ContextCache`]s; 0 disables cache
    /// storage entirely.
    cache_budget: usize,
    /// Resident bytes of every cache currently parked in a slot.
    cache_bytes: AtomicUsize,
    /// Caches dropped to stay within the budget (LRU fallback — the
    /// affected session silently re-encodes cold on its next request).
    cache_evictions: AtomicU64,
}

impl SessionStore {
    /// Create a store with `num_shards` independent shards (rounded up to
    /// at least 1) and no context-cache storage.
    pub fn new(num_shards: usize) -> Self {
        Self::with_cache_budget(num_shards, 0)
    }

    /// Create a store whose slots may park up to `cache_budget_bytes` of
    /// per-session incremental model state ([`ContextCache`]); 0 disables
    /// cache storage.
    pub fn with_cache_budget(num_shards: usize, cache_budget_bytes: usize) -> Self {
        let n = num_shards.max(1);
        SessionStore {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            cache_budget: cache_budget_bytes,
            cache_bytes: AtomicUsize::new(0),
            cache_evictions: AtomicU64::new(0),
        }
    }

    /// Whether this store parks context caches at all.
    pub fn cache_enabled(&self) -> bool {
        self.cache_budget > 0
    }

    /// Resident bytes of every parked context cache.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache_bytes.load(Ordering::Relaxed)
    }

    /// Caches dropped by the LRU budget fallback since startup.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Take the session's parked context cache for a request round-trip
    /// (hand it back with [`SessionStore::put_cache`]).  `None` when the
    /// session is unknown or has no cache parked.
    pub fn take_cache(&self, id: SessionId) -> Option<ContextCache> {
        let cache = self.shard(id).lock().get_mut(&id).and_then(|slot| slot.cache.take())?;
        self.cache_bytes.fetch_sub(cache.resident_bytes(), Ordering::Relaxed);
        Some(cache)
    }

    /// Park a context cache on the session, evicting least-recently-seen
    /// caches from *other* sessions if the budget demands it.  The cache
    /// (or, as a last resort, the incoming one) is dropped when the
    /// budget still cannot accommodate it — the session then re-encodes
    /// cold next time, which is always correct.
    pub fn put_cache(&self, id: SessionId, cache: ContextCache) {
        if self.cache_budget == 0 {
            return;
        }
        let bytes = cache.resident_bytes();
        while bytes > self.cache_budget.saturating_sub(self.cache_bytes.load(Ordering::Relaxed)) {
            if !self.evict_lru_cache(id) {
                // Nothing evictable is left (or the cache alone exceeds
                // the budget): drop the incoming cache instead.
                self.cache_evictions.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut shard = self.shard(id).lock();
        let Some(slot) = shard.get_mut(&id) else { return }; // session evicted mid-flight
        slot.cache = Some(cache);
        self.cache_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Drop the least-recently-seen parked cache, skipping `keep` (the
    /// session whose cache is being parked).  Returns whether anything
    /// was evicted.
    fn evict_lru_cache(&self, keep: SessionId) -> bool {
        let mut victim: Option<(SessionId, Instant)> = None;
        for shard in &self.shards {
            for (&id, slot) in shard.lock().iter() {
                if id != keep && slot.cache.is_some() {
                    let older = victim.is_none_or(|(_, seen)| slot.last_seen < seen);
                    if older {
                        victim = Some((id, slot.last_seen));
                    }
                }
            }
        }
        let Some((id, _)) = victim else { return false };
        // Re-lock the victim's shard; the cache may have been taken by a
        // concurrent request in the window — treat that as nothing to
        // evict this round.
        let Some(cache) = self.shard(id).lock().get_mut(&id).and_then(|slot| slot.cache.take())
        else {
            return false;
        };
        self.cache_bytes.fetch_sub(cache.resident_bytes(), Ordering::Relaxed);
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn shard(&self, id: SessionId) -> &Mutex<HashMap<SessionId, Slot>> {
        // Ids are sequential; a multiplicative hash spreads neighbouring
        // sessions across shards (Fibonacci hashing).
        let h = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Insert a new session on the stable arm and return its id.
    pub fn insert(&self, session: InteractiveSession) -> SessionId {
        self.insert_assigned(session, |_| 0).0
    }

    /// Insert a new session, letting `assign` pick its sticky traffic arm
    /// from the freshly allocated id (the id is the split hash's input,
    /// so assignment has to happen after allocation).  Returns the id and
    /// the assigned arm (clamped into range).
    pub fn insert_assigned(
        &self,
        session: InteractiveSession,
        assign: impl FnOnce(SessionId) -> usize,
    ) -> (SessionId, usize) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let arm = assign(id).min(NUM_ARMS - 1);
        self.shard(id)
            .lock()
            .insert(id, Slot { session, last_seen: Instant::now(), pins: 0, cache: None, arm });
        (id, arm)
    }

    /// Pin the session against TTL eviction and run `f` on it (and its
    /// assigned arm) under the shard lock — one lock acquisition covers
    /// both, so there is no window where the sweeper can evict between
    /// the read and the pin.  The pin lasts until the returned
    /// [`SessionPin`] is dropped.  `None` when the id is unknown.
    pub fn pin_with<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut InteractiveSession, usize) -> T,
    ) -> Option<(SessionPin<'_>, T)> {
        let mut shard = self.shard(id).lock();
        let slot = shard.get_mut(&id)?;
        slot.last_seen = Instant::now();
        slot.pins += 1;
        let value = f(&mut slot.session, slot.arm);
        drop(shard);
        Some((SessionPin { store: self, id }, value))
    }

    fn unpin(&self, id: SessionId) {
        if let Some(slot) = self.shard(id).lock().get_mut(&id) {
            slot.pins = slot.pins.saturating_sub(1);
            // The request that held the pin just finished: that is
            // activity, so the idle clock restarts now rather than at the
            // moment the request started.
            slot.last_seen = Instant::now();
        }
    }

    /// Run `f` on the session under its shard lock, refreshing its
    /// idle timestamp.  `None` when the id is unknown (expired or never
    /// issued).
    pub fn with<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut InteractiveSession) -> T,
    ) -> Option<T> {
        self.with_arm(id, |session, _| f(session))
    }

    /// Like [`SessionStore::with`], also handing `f` the session's sticky
    /// traffic arm.
    pub fn with_arm<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut InteractiveSession, usize) -> T,
    ) -> Option<T> {
        self.shard(id).lock().get_mut(&id).map(|slot| {
            slot.last_seen = Instant::now();
            f(&mut slot.session, slot.arm)
        })
    }

    /// Live sessions per traffic arm (one pass over every shard; a stats
    /// endpoint cost, not a request-path one).
    pub fn arm_census(&self) -> [usize; NUM_ARMS] {
        let mut census = [0usize; NUM_ARMS];
        for shard in &self.shards {
            for slot in shard.lock().values() {
                census[slot.arm.min(NUM_ARMS - 1)] += 1;
            }
        }
        census
    }

    /// Remove a session, returning its final state.
    pub fn remove(&self, id: SessionId) -> Option<InteractiveSession> {
        let slot = self.shard(id).lock().remove(&id)?;
        if let Some(cache) = &slot.cache {
            self.cache_bytes.fetch_sub(cache.resident_bytes(), Ordering::Relaxed);
        }
        Some(slot.session)
    }

    /// Evict every session idle for at least `ttl`, returning how many
    /// were dropped.  Shards are swept one lock at a time, so request
    /// handlers only ever contend with the sweep of their own shard.
    /// Sessions with an in-flight request (pinned) are never evicted,
    /// however stale their idle timestamp — the request finishing will
    /// refresh it.
    pub fn sweep_older_than(&self, ttl: Duration) -> usize {
        let now = Instant::now();
        self.shards
            .iter()
            .map(|s| {
                let mut shard = s.lock();
                let before = shard.len();
                let mut freed = 0usize;
                shard.retain(|_, slot| {
                    let keep = slot.pins > 0 || now.duration_since(slot.last_seen) < ttl;
                    if !keep {
                        if let Some(cache) = &slot.cache {
                            freed += cache.resident_bytes();
                        }
                    }
                    keep
                });
                if freed > 0 {
                    self.cache_bytes.fetch_sub(freed, Ordering::Relaxed);
                }
                before - shard.len()
            })
            .sum()
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard marking a session as having a request in flight (see
/// [`SessionStore::pin_with`]).  Dropping it unpins the session and
/// refreshes its idle timestamp — panic-safe, so a handler that unwinds
/// mid-request cannot leave a session pinned forever.
pub struct SessionPin<'a> {
    store: &'a SessionStore,
    id: SessionId,
}

impl Drop for SessionPin<'_> {
    fn drop(&mut self) {
        self.store.unpin(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(user: usize) -> InteractiveSession {
        InteractiveSession::new(user, vec![1, 2], 9, 10, 3)
    }

    #[test]
    fn insert_with_remove_round_trip() {
        let store = SessionStore::new(4);
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.with(a, |s| s.user()), Some(0));
        assert_eq!(store.with(b, |s| s.user()), Some(1));
        store.with(a, |s| s.record(5, true));
        assert_eq!(store.with(a, |s| s.accepted().to_vec()), Some(vec![5]));
        let removed = store.remove(a).unwrap();
        assert_eq!(removed.accepted(), &[5]);
        assert!(store.with(a, |_| ()).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sweep_evicts_only_idle_sessions() {
        let store = SessionStore::new(4);
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        std::thread::sleep(Duration::from_millis(30));
        // Touch `a` so only `b` is idle past the TTL.
        store.with(a, |_| ());
        let evicted = store.sweep_older_than(Duration::from_millis(20));
        assert_eq!(evicted, 1);
        assert!(store.with(a, |_| ()).is_some(), "touched session must survive");
        assert!(store.with(b, |_| ()).is_none(), "idle session must be evicted");
        // A generous TTL evicts nothing.
        assert_eq!(store.sweep_older_than(Duration::from_secs(3600)), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pinned_sessions_survive_the_sweep() {
        let store = SessionStore::new(2);
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        let (pin, user) = store.pin_with(a, |s, _| s.user()).unwrap();
        assert_eq!(user, 0);
        std::thread::sleep(Duration::from_millis(25));
        // Both sessions look idle, but `a` has a request in flight.
        let evicted = store.sweep_older_than(Duration::from_millis(10));
        assert_eq!(evicted, 1);
        assert!(store.with(a, |_| ()).is_some(), "pinned session must survive");
        assert!(store.with(b, |_| ()).is_none(), "unpinned idle session must be evicted");
        drop(pin);
        // Unpinning refreshes the idle clock, so an immediate sweep still
        // spares it…
        assert_eq!(store.sweep_older_than(Duration::from_millis(10)), 0);
        std::thread::sleep(Duration::from_millis(25));
        // …but once genuinely idle again it is evictable.
        assert_eq!(store.sweep_older_than(Duration::from_millis(10)), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn pin_is_reentrant_across_requests() {
        let store = SessionStore::new(2);
        let a = store.insert(session(0));
        let (p1, ()) = store.pin_with(a, |_, _| ()).unwrap();
        let (p2, ()) = store.pin_with(a, |_, _| ()).unwrap();
        drop(p1);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            store.sweep_older_than(Duration::from_millis(5)),
            0,
            "second in-flight request must keep the session pinned"
        );
        drop(p2);
        assert!(store.pin_with(99, |_, _| ()).is_none(), "unknown ids cannot be pinned");
    }

    #[test]
    fn arm_assignment_is_sticky_and_censused() {
        let store = SessionStore::new(4);
        // Odd ids to the canary, even ids stable.
        let assign = |id: SessionId| (id % 2) as usize;
        let mut canary = 0usize;
        let mut ids = Vec::new();
        for u in 0..10 {
            let (id, arm) = store.insert_assigned(session(u), assign);
            assert_eq!(arm, assign(id), "assignment sees the allocated id");
            canary += arm;
            ids.push((id, arm));
        }
        for &(id, arm) in &ids {
            assert_eq!(store.with_arm(id, |_, a| a), Some(arm), "arm is sticky");
            let (pin, pinned_arm) = store.pin_with(id, |_, a| a).unwrap();
            assert_eq!(pinned_arm, arm);
            drop(pin);
        }
        let census = store.arm_census();
        assert_eq!(census[1], canary);
        assert_eq!(census[0] + census[1], 10);
        // Plain insert defaults to the stable arm; out-of-range
        // assignments clamp.
        let a = store.insert(session(0));
        assert_eq!(store.with_arm(a, |_, arm| arm), Some(0));
        let (_, clamped) = store.insert_assigned(session(1), |_| 99);
        assert_eq!(clamped, NUM_ARMS - 1);
    }

    struct FakeState(usize);
    impl irs_core::CacheState for FakeState {
        fn resident_bytes(&self) -> usize {
            self.0
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn cache(bytes: usize) -> ContextCache {
        ContextCache { state: Box::new(FakeState(bytes)), generation: 1 }
    }

    #[test]
    fn cache_budget_parks_takes_and_evicts_lru() {
        let store = SessionStore::with_cache_budget(2, 100);
        assert!(store.cache_enabled());
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        store.put_cache(a, cache(60));
        assert_eq!(store.cache_resident_bytes(), 60);
        std::thread::sleep(Duration::from_millis(5));
        store.with(b, |_| ()); // `b` is now the more recently seen session
        store.put_cache(b, cache(60)); // over budget → `a`'s cache is the LRU victim
        assert_eq!(store.cache_resident_bytes(), 60);
        assert_eq!(store.cache_evictions(), 1);
        assert!(store.take_cache(a).is_none(), "LRU cache must be gone");
        assert!(store.take_cache(b).is_some(), "parked cache comes back");
        assert_eq!(store.cache_resident_bytes(), 0);
        // A cache bigger than the whole budget is dropped outright.
        store.put_cache(b, cache(200));
        assert!(store.take_cache(b).is_none());
        assert_eq!(store.cache_evictions(), 2);
        // Removing a session releases its cache bytes.
        store.put_cache(b, cache(40));
        assert_eq!(store.cache_resident_bytes(), 40);
        store.remove(b);
        assert_eq!(store.cache_resident_bytes(), 0);
    }

    #[test]
    fn disabled_cache_budget_parks_nothing() {
        let store = SessionStore::new(2);
        assert!(!store.cache_enabled());
        let a = store.insert(session(0));
        store.put_cache(a, cache(10));
        assert!(store.take_cache(a).is_none());
        assert_eq!(store.cache_resident_bytes(), 0);
    }

    #[test]
    fn unknown_ids_are_none() {
        let store = SessionStore::new(2);
        assert!(store.with(99, |_| ()).is_none());
        assert!(store.remove(99).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_inserts_get_unique_ids() {
        let store = std::sync::Arc::new(SessionStore::new(8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..50).map(|_| store.insert(session(t))).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<SessionId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "ids must be unique across threads");
        assert_eq!(store.len(), 200);
    }
}
