//! Sharded concurrent session store.
//!
//! Sessions are the per-user state [`irs_core::run_interactive_session`]
//! used to own internally: the accepted path prefix, the rejection
//! blocklist and the `accepted ⊕ rejected` virtual path.  The store
//! shards them by id across independently locked maps so concurrent
//! request handlers for different sessions rarely contend, while one
//! session's transitions stay serialised behind its shard lock.
//!
//! Every access refreshes a per-session last-seen timestamp;
//! [`SessionStore::sweep_older_than`] evicts sessions idle past a TTL —
//! the frontend runs it from a background sweeper so abandoned sessions
//! stop pinning slots against the `max_sessions` cap.
//!
//! A session with a request in flight must not be swept out from under
//! that request (the model round-trip can outlast a short TTL, and losing
//! the session mid-request drops the give-up record or 404s the follow-up
//! feedback).  [`SessionStore::pin`] marks a session busy for the
//! lifetime of the returned [`SessionPin`] guard; the sweeper skips
//! pinned sessions no matter how stale their timestamp looks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use irs_core::InteractiveSession;
use parking_lot::Mutex;

/// Opaque session identifier handed to clients.
pub type SessionId = u64;

/// A stored session plus its idle-tracking timestamp.
struct Slot {
    session: InteractiveSession,
    last_seen: Instant,
    /// In-flight requests currently pinning this session (see
    /// [`SessionStore::pin`]); the sweeper never evicts a pinned slot.
    pins: u32,
}

/// A sharded `SessionId → InteractiveSession` map with idle tracking.
pub struct SessionStore {
    shards: Vec<Mutex<HashMap<SessionId, Slot>>>,
    next_id: AtomicU64,
}

impl SessionStore {
    /// Create a store with `num_shards` independent shards (rounded up to
    /// at least 1).
    pub fn new(num_shards: usize) -> Self {
        let n = num_shards.max(1);
        SessionStore {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard(&self, id: SessionId) -> &Mutex<HashMap<SessionId, Slot>> {
        // Ids are sequential; a multiplicative hash spreads neighbouring
        // sessions across shards (Fibonacci hashing).
        let h = id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Insert a new session and return its id.
    pub fn insert(&self, session: InteractiveSession) -> SessionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shard(id).lock().insert(id, Slot { session, last_seen: Instant::now(), pins: 0 });
        id
    }

    /// Pin the session against TTL eviction and run `f` on it under the
    /// shard lock — one lock acquisition covers both, so there is no
    /// window where the sweeper can evict between the read and the pin.
    /// The pin lasts until the returned [`SessionPin`] is dropped.
    /// `None` when the id is unknown.
    pub fn pin_with<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut InteractiveSession) -> T,
    ) -> Option<(SessionPin<'_>, T)> {
        let mut shard = self.shard(id).lock();
        let slot = shard.get_mut(&id)?;
        slot.last_seen = Instant::now();
        slot.pins += 1;
        let value = f(&mut slot.session);
        drop(shard);
        Some((SessionPin { store: self, id }, value))
    }

    fn unpin(&self, id: SessionId) {
        if let Some(slot) = self.shard(id).lock().get_mut(&id) {
            slot.pins = slot.pins.saturating_sub(1);
            // The request that held the pin just finished: that is
            // activity, so the idle clock restarts now rather than at the
            // moment the request started.
            slot.last_seen = Instant::now();
        }
    }

    /// Run `f` on the session under its shard lock, refreshing its
    /// idle timestamp.  `None` when the id is unknown (expired or never
    /// issued).
    pub fn with<T>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut InteractiveSession) -> T,
    ) -> Option<T> {
        self.shard(id).lock().get_mut(&id).map(|slot| {
            slot.last_seen = Instant::now();
            f(&mut slot.session)
        })
    }

    /// Remove a session, returning its final state.
    pub fn remove(&self, id: SessionId) -> Option<InteractiveSession> {
        self.shard(id).lock().remove(&id).map(|slot| slot.session)
    }

    /// Evict every session idle for at least `ttl`, returning how many
    /// were dropped.  Shards are swept one lock at a time, so request
    /// handlers only ever contend with the sweep of their own shard.
    /// Sessions with an in-flight request (pinned) are never evicted,
    /// however stale their idle timestamp — the request finishing will
    /// refresh it.
    pub fn sweep_older_than(&self, ttl: Duration) -> usize {
        let now = Instant::now();
        self.shards
            .iter()
            .map(|s| {
                let mut shard = s.lock();
                let before = shard.len();
                shard.retain(|_, slot| slot.pins > 0 || now.duration_since(slot.last_seen) < ttl);
                before - shard.len()
            })
            .sum()
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard marking a session as having a request in flight (see
/// [`SessionStore::pin_with`]).  Dropping it unpins the session and
/// refreshes its idle timestamp — panic-safe, so a handler that unwinds
/// mid-request cannot leave a session pinned forever.
pub struct SessionPin<'a> {
    store: &'a SessionStore,
    id: SessionId,
}

impl Drop for SessionPin<'_> {
    fn drop(&mut self) {
        self.store.unpin(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(user: usize) -> InteractiveSession {
        InteractiveSession::new(user, vec![1, 2], 9, 10, 3)
    }

    #[test]
    fn insert_with_remove_round_trip() {
        let store = SessionStore::new(4);
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.with(a, |s| s.user()), Some(0));
        assert_eq!(store.with(b, |s| s.user()), Some(1));
        store.with(a, |s| s.record(5, true));
        assert_eq!(store.with(a, |s| s.accepted().to_vec()), Some(vec![5]));
        let removed = store.remove(a).unwrap();
        assert_eq!(removed.accepted(), &[5]);
        assert!(store.with(a, |_| ()).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sweep_evicts_only_idle_sessions() {
        let store = SessionStore::new(4);
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        std::thread::sleep(Duration::from_millis(30));
        // Touch `a` so only `b` is idle past the TTL.
        store.with(a, |_| ());
        let evicted = store.sweep_older_than(Duration::from_millis(20));
        assert_eq!(evicted, 1);
        assert!(store.with(a, |_| ()).is_some(), "touched session must survive");
        assert!(store.with(b, |_| ()).is_none(), "idle session must be evicted");
        // A generous TTL evicts nothing.
        assert_eq!(store.sweep_older_than(Duration::from_secs(3600)), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn pinned_sessions_survive_the_sweep() {
        let store = SessionStore::new(2);
        let a = store.insert(session(0));
        let b = store.insert(session(1));
        let (pin, user) = store.pin_with(a, |s| s.user()).unwrap();
        assert_eq!(user, 0);
        std::thread::sleep(Duration::from_millis(25));
        // Both sessions look idle, but `a` has a request in flight.
        let evicted = store.sweep_older_than(Duration::from_millis(10));
        assert_eq!(evicted, 1);
        assert!(store.with(a, |_| ()).is_some(), "pinned session must survive");
        assert!(store.with(b, |_| ()).is_none(), "unpinned idle session must be evicted");
        drop(pin);
        // Unpinning refreshes the idle clock, so an immediate sweep still
        // spares it…
        assert_eq!(store.sweep_older_than(Duration::from_millis(10)), 0);
        std::thread::sleep(Duration::from_millis(25));
        // …but once genuinely idle again it is evictable.
        assert_eq!(store.sweep_older_than(Duration::from_millis(10)), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn pin_is_reentrant_across_requests() {
        let store = SessionStore::new(2);
        let a = store.insert(session(0));
        let (p1, ()) = store.pin_with(a, |_| ()).unwrap();
        let (p2, ()) = store.pin_with(a, |_| ()).unwrap();
        drop(p1);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            store.sweep_older_than(Duration::from_millis(5)),
            0,
            "second in-flight request must keep the session pinned"
        );
        drop(p2);
        assert!(store.pin_with(99, |_| ()).is_none(), "unknown ids cannot be pinned");
    }

    #[test]
    fn unknown_ids_are_none() {
        let store = SessionStore::new(2);
        assert!(store.with(99, |_| ()).is_none());
        assert!(store.remove(99).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_inserts_get_unique_ids() {
        let store = std::sync::Arc::new(SessionStore::new(8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..50).map(|_| store.insert(session(t))).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<SessionId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 200, "ids must be unique across threads");
        assert_eq!(store.len(), 200);
    }
}
