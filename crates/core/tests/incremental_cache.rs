//! Cross-family property tests pinning every incremental context-cache
//! path to its cold full re-encode, **bitwise**.
//!
//! The serving cache (PR "incremental per-session context cache") only
//! holds if a cached serve step is *unobservable* in the scores: the
//! incremental path must accumulate every float in the same order over
//! the same visible keys as a from-scratch encode.  These tests drive
//! random session mixes — growing prefixes, window slides past
//! `max_len`, mid-prefix mutations that force a rebuild — through all
//! four cached families:
//!
//! * IRN in [`EncodingLayout::AppendOnly`] (per-layer context K/V rows
//!   plus the objective ladder), via [`Irn::score_next_cached`];
//! * SASRec in the append-only layout (per-layer K/V rows), GRU4Rec
//!   (carried hidden state) and Caser (rolling embedded window), via
//!   [`SequentialScorer::score_incremental`].

use std::sync::OnceLock;

use irs_baselines::{
    Caser, CaserConfig, Gru4Rec, Gru4RecConfig, NeuralTrainConfig, SasRec, SasRecConfig,
    SequentialScorer,
};
use irs_core::{EncodingLayout, Irn, IrnConfig};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use proptest::prelude::*;

const ITEM_BOUND: usize = 60; // SynthConfig::tiny catalogue size

struct Fixture {
    num_items: usize,
    num_users: usize,
    irn: Irn,
    /// The cached baseline families (each answers
    /// `new_incremental_state() == Some(..)`).
    scorers: Vec<Box<dyn SequentialScorer + Send + Sync>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate(&SynthConfig::tiny(0x1cc)).dataset;
        let split = split_dataset(&dataset, &SplitConfig::small());
        let n = dataset.num_items;
        let train = NeuralTrainConfig { epochs: 1, ..Default::default() };
        let irn = Irn::fit(
            &split.train,
            &[],
            n,
            dataset.num_users,
            &IrnConfig {
                dim: 16,
                user_dim: 4,
                layers: 1,
                heads: 2,
                max_len: 8,
                layout: EncodingLayout::AppendOnly,
                train: train.clone(),
                ..Default::default()
            },
            None,
        );
        let scorers: Vec<Box<dyn SequentialScorer + Send + Sync>> = vec![
            Box::new(SasRec::fit(
                &split.train,
                n,
                &SasRecConfig {
                    dim: 8,
                    layers: 2,
                    heads: 2,
                    max_len: 8,
                    dropout: 0.0,
                    layout: EncodingLayout::AppendOnly,
                    train: train.clone(),
                },
            )),
            Box::new(Gru4Rec::fit(
                &split.train,
                n,
                &Gru4RecConfig { dim: 8, hidden: 8, max_len: 8, train: train.clone() },
            )),
            Box::new(Caser::fit(
                &split.train,
                n,
                dataset.num_users,
                &CaserConfig {
                    dim: 8,
                    l_window: 4,
                    heights: vec![2, 3],
                    n_h: 4,
                    n_v: 2,
                    dropout: 0.0,
                    train,
                },
            )),
        ];
        Fixture { num_items: n, num_users: dataset.num_users, irn, scorers }
    })
}

fn assert_bitwise(label: &str, step: usize, incremental: &[f32], cold: &[f32]) {
    assert_eq!(incremental.len(), cold.len(), "{label}: score length at step {step}");
    for (idx, (a, b)) in incremental.iter().zip(cold).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}: item {idx} at step {step}: cached {a} vs cold {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every cached baseline family scores a growing session — including
    /// window slides past `max_len` — exactly like its cold path, then
    /// survives a mid-prefix mutation (forced rebuild) still bitwise.
    #[test]
    fn baseline_incremental_matches_cold_bitwise(
        session in proptest::collection::vec(0usize..ITEM_BOUND, 1..16),
        user in 0usize..40,
        (mutate, flip_at, flip_to) in (0usize..2, 0usize..16, 0usize..ITEM_BOUND),
    ) {
        let f = fixture();
        let session: Vec<ItemId> = session.iter().map(|&i| i % f.num_items).collect();
        for scorer in &f.scorers {
            let mut state = scorer
                .new_incremental_state()
                .unwrap_or_else(|| panic!("{} must expose an incremental state", scorer.name()));
            for step in 1..=session.len() {
                let ctx = &session[..step];
                let (inc, _hit) = scorer.score_incremental(user, ctx, state.as_mut());
                assert_bitwise(scorer.name(), step, &inc, &scorer.score(user, ctx));
            }
            prop_assert!(state.resident_bytes() > 0, "{}: empty state after encoding", scorer.name());
            if mutate == 1 {
                let mut mutated = session.clone();
                let at = flip_at % mutated.len();
                mutated[at] = flip_to % f.num_items;
                let (inc, _hit) = scorer.score_incremental(user, &mutated, state.as_mut());
                assert_bitwise(scorer.name(), usize::MAX, &inc, &scorer.score(user, &mutated));
            }
        }
    }

    /// The IRN append-only cache — context K/V rows *plus* the pinned
    /// objective ladder — replays a growing session bitwise against the
    /// cold append encode, across random users and objectives.
    #[test]
    fn irn_incremental_matches_cold_bitwise(
        session in proptest::collection::vec(0usize..ITEM_BOUND, 0..14),
        user in 0usize..12,
        objective in 0usize..ITEM_BOUND,
        (mutate, flip_at, flip_to) in (0usize..2, 0usize..14, 0usize..ITEM_BOUND),
    ) {
        let f = fixture();
        let session: Vec<ItemId> = session.iter().map(|&i| i % f.num_items).collect();
        let user = user % f.num_users;
        let objective = objective % f.num_items;
        let mut cache = f.irn.new_append_cache();
        for step in 0..=session.len() {
            let ctx = &session[..step];
            let (inc, _hit) = f.irn.score_next_cached(user, ctx, objective, &mut cache);
            assert_bitwise("IRN", step, &inc, &f.irn.score_next(user, ctx, objective));
        }
        if mutate == 1 && !session.is_empty() {
            let mut mutated = session;
            let at = flip_at % mutated.len();
            mutated[at] = flip_to % f.num_items;
            let (inc, _hit) = f.irn.score_next_cached(user, &mutated, objective, &mut cache);
            assert_bitwise("IRN", usize::MAX, &inc, &f.irn.score_next(user, &mutated, objective));
        }
    }
}
