//! Beam-search influence-path generation — an extension of Algorithm 1's
//! greedy argmax decoding.
//!
//! IRN generates paths token-by-token; the paper decodes greedily.  Beam
//! search keeps the `beam_width` most probable partial paths and scores
//! complete candidates by mean log-probability plus a bonus for reaching
//! the objective, trading extra compute for smoother and more successful
//! paths.  The ablation experiment (`exp_ablations`) compares the two.

use irs_data::{ItemId, UserId};

use crate::irn::Irn;

/// Beam-search configuration.
#[derive(Debug, Clone)]
pub struct BeamConfig {
    /// Number of partial paths kept per step.
    pub beam_width: usize,
    /// Branching factor: candidate successors expanded per beam entry.
    pub branch: usize,
    /// Maximum path length `M`.
    pub max_len: usize,
    /// Additive log-space bonus for paths that reach the objective.
    pub success_bonus: f32,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig { beam_width: 3, branch: 3, max_len: 20, success_bonus: 2.0 }
    }
}

/// Fixed-size membership bitmask over the item catalogue: the candidate
/// filter tests every item against every hypothesis each step, so this is
/// an O(1) lookup instead of an O(|path|) `Vec::contains` scan.
#[derive(Clone)]
struct ItemMask {
    words: Vec<u64>,
}

impl ItemMask {
    fn new(num_items: usize) -> Self {
        ItemMask { words: vec![0; num_items.div_ceil(64)] }
    }

    fn from_items(num_items: usize, items: &[ItemId]) -> Self {
        let mut m = ItemMask::new(num_items);
        for &i in items {
            m.insert(i);
        }
        m
    }

    fn insert(&mut self, i: ItemId) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w |= 1u64 << (i % 64);
        }
    }

    #[inline]
    fn contains(&self, i: ItemId) -> bool {
        self.words.get(i / 64).is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }
}

#[derive(Clone)]
struct Hypothesis {
    path: Vec<ItemId>,
    /// Bitmask over `path` (history has its own shared mask).
    path_mask: ItemMask,
    log_prob_sum: f32,
    finished: bool,
}

impl Hypothesis {
    fn score(&self, bonus: f32) -> f32 {
        let mean =
            if self.path.is_empty() { 0.0 } else { self.log_prob_sum / self.path.len() as f32 };
        mean + if self.finished { bonus } else { 0.0 }
    }
}

/// Generate an influence path with beam search over IRN's next-item
/// distribution.  Returns the best-scoring path.
///
/// All open hypotheses of a step are scored in a single
/// [`Irn::score_next_batch`] forward, and candidate filtering uses
/// precomputed bitmasks instead of per-item `contains` scans over the
/// history and path.
pub fn beam_search_path(
    irn: &Irn,
    user: UserId,
    history: &[ItemId],
    objective: ItemId,
    config: &BeamConfig,
) -> Vec<ItemId> {
    assert!(config.beam_width >= 1 && config.branch >= 1);
    let history_mask = ItemMask::from_items(irn.num_items(), history);
    let mut beams = vec![Hypothesis {
        path: Vec::new(),
        path_mask: ItemMask::new(irn.num_items()),
        log_prob_sum: 0.0,
        finished: false,
    }];

    for _step in 0..config.max_len {
        let open: Vec<usize> = (0..beams.len()).filter(|&i| !beams[i].finished).collect();
        if open.is_empty() {
            break;
        }
        // One batched forward for every open hypothesis.
        let contexts: Vec<Vec<ItemId>> = open
            .iter()
            .map(|&i| {
                let mut c = history.to_vec();
                c.extend_from_slice(&beams[i].path);
                c
            })
            .collect();
        let ctx_refs: Vec<&[ItemId]> = contexts.iter().map(Vec::as_slice).collect();
        let users = vec![user; open.len()];
        let objectives = vec![objective; open.len()];
        let batch_scores = irn.score_next_batch(&users, &ctx_refs, &objectives);

        // Rebuild `expanded` in the original per-hypothesis order (each
        // finished clone interleaved with each open hypothesis's
        // expansions) so exact-score ties at the truncation boundary break
        // the same way as the pre-batching sequential loop.
        let mut expanded: Vec<Hypothesis> = Vec::new();
        let mut batch_row = 0usize;
        for hyp in &beams {
            if hyp.finished {
                expanded.push(hyp.clone());
                continue;
            }
            let scores = &batch_scores[batch_row];
            batch_row += 1;
            // Log-softmax for calibrated accumulation.
            let lse = irs_tensor::log_sum_exp(scores);
            let mut candidates: Vec<(ItemId, f32)> = scores
                .iter()
                .enumerate()
                .filter(|&(item, _)| {
                    !history_mask.contains(item)
                        && (!hyp.path_mask.contains(item) || item == objective)
                })
                .map(|(item, &s)| (item, s - lse))
                .collect();
            candidates.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
            });
            for &(item, lp) in candidates.iter().take(config.branch) {
                let mut path = hyp.path.clone();
                path.push(item);
                let mut path_mask = hyp.path_mask.clone();
                path_mask.insert(item);
                expanded.push(Hypothesis {
                    finished: item == objective,
                    log_prob_sum: hyp.log_prob_sum + lp,
                    path,
                    path_mask,
                });
            }
        }
        if expanded.is_empty() {
            break;
        }
        expanded.sort_unstable_by(|a, b| {
            b.score(config.success_bonus)
                .partial_cmp(&a.score(config.success_bonus))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        expanded.truncate(config.beam_width);
        let done = expanded.iter().all(|h| h.finished);
        beams = expanded;
        if done {
            break;
        }
    }

    beams
        .into_iter()
        .max_by(|a, b| a.score(2.0).partial_cmp(&b.score(2.0)).unwrap_or(std::cmp::Ordering::Equal))
        .map(|h| h.path)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irn::{Irn, IrnConfig, MaskType};
    use irs_baselines::NeuralTrainConfig;
    use irs_data::split::SubSeq;

    fn tiny_irn() -> Irn {
        let mut seqs = Vec::new();
        for s in 0..24 {
            let items: Vec<ItemId> = (0..8).map(|k| (s + k) % 10).collect();
            seqs.push(SubSeq { user: s % 4, items });
        }
        Irn::fit(
            &seqs,
            &[],
            10,
            4,
            &IrnConfig {
                dim: 16,
                user_dim: 4,
                layers: 1,
                heads: 2,
                max_len: 10,
                dropout: 0.0,
                wt: 1.0,
                mask_type: MaskType::ObjectivePersonalized,
                padding: irs_data::split::PaddingScheme::Pre,
                layout: crate::EncodingLayout::PrePadded,
                train: NeuralTrainConfig { epochs: 3, ..Default::default() },
            },
            None,
        )
    }

    #[test]
    fn beam_paths_respect_budget_and_dedup() {
        let irn = tiny_irn();
        let cfg = BeamConfig { beam_width: 2, branch: 2, max_len: 5, success_bonus: 2.0 };
        let path = beam_search_path(&irn, 0, &[0, 1], 7, &cfg);
        assert!(path.len() <= 5);
        let mut seen = vec![0usize, 1];
        for &i in &path {
            assert!(!seen.contains(&i) || i == 7, "repeated item {i}");
            seen.push(i);
        }
    }

    #[test]
    fn beam_width_one_is_greedy_like() {
        let irn = tiny_irn();
        let cfg = BeamConfig { beam_width: 1, branch: 1, max_len: 4, success_bonus: 0.0 };
        let beam = beam_search_path(&irn, 0, &[0, 1], 7, &cfg);
        let greedy = crate::generate_influence_path(&irn, 0, &[0, 1], 7, 4);
        assert_eq!(beam, greedy, "width-1 branch-1 beam must equal greedy decoding");
    }

    #[test]
    fn beam_stops_at_objective() {
        let irn = tiny_irn();
        let cfg = BeamConfig::default();
        let path = beam_search_path(&irn, 0, &[5, 6], 7, &cfg);
        if let Some(pos) = path.iter().position(|&i| i == 7) {
            assert_eq!(pos, path.len() - 1, "objective must terminate the path");
        }
    }
}
