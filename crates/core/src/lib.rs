//! # irs_core — the Influential Recommender System
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`Irn`] — the **Influential Recommender Network** (§III-D): a
//!   Transformer decoder whose attention carries the **Personalized
//!   Impressionability Mask** (PIM).  Input sequences are pre-padded so the
//!   objective item sits at a fixed final position; every query position
//!   may additionally attend to that objective column with weight
//!   `w_t · r_u`, where `r_u = W_U · e(u)` is a learned per-user
//!   impressionability factor.
//! * The two adapted frameworks used as baselines: [`Pf2Inf`] (§III-B,
//!   path-finding over the item co-occurrence graph — Dijkstra or MST) and
//!   [`Rec2Inf`] (§III-C, greedy re-sort of any sequential recommender's
//!   top-k by distance to the objective), plus [`Vanilla`] (the unadapted
//!   recommender).
//! * [`generate_influence_path`] — Algorithm 1: recursively ask the
//!   recommender for the next path item until the objective is reached or
//!   the budget `M` is exhausted.
//!
//! ## The influence-path contract
//!
//! All frameworks implement [`InfluenceRecommender`].  Implementations
//! never recommend an item already present in `history ⊕ path` (a
//! recommender that repeats itself would loop; the paper's Algorithm 1
//! implicitly assumes fresh recommendations).
//!
//! ```
//! use irs_core::{generate_influence_path, InfluenceRecommender};
//!
//! /// A toy recommender that walks the item line toward the objective.
//! struct Walker;
//! impl InfluenceRecommender for Walker {
//!     fn name(&self) -> String { "walker".into() }
//!     fn next_item(&self, _u: usize, history: &[usize], objective: usize,
//!                  path: &[usize]) -> Option<usize> {
//!         let cur = path.last().or_else(|| history.last()).copied()?;
//!         Some(if cur < objective { cur + 1 } else { cur.saturating_sub(1) })
//!     }
//! }
//!
//! let path = generate_influence_path(&Walker, 0, &[2], 5, 10);
//! assert_eq!(path, vec![3, 4, 5]); // stops at the objective
//! ```

pub mod beam;
pub mod interactive;
mod irn;
pub mod kg;
pub mod objective;
mod pf2inf;
mod rec2inf;
mod vanilla;

pub(crate) mod rec_utils {
    use irs_data::ItemId;

    /// Top-`k` scoring items that appear in neither `history` nor `path`.
    /// Returned in descending score order.
    pub fn top_k_unseen(
        scores: &[f32],
        k: usize,
        history: &[ItemId],
        path: &[ItemId],
    ) -> Vec<ItemId> {
        let mut idx: Vec<ItemId> =
            (0..scores.len()).filter(|i| !history.contains(i) && !path.contains(i)).collect();
        idx.sort_unstable_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn filters_and_orders() {
            let scores = vec![0.1, 0.9, 0.5, 0.7];
            let top = top_k_unseen(&scores, 2, &[1], &[]);
            assert_eq!(top, vec![3, 2]);
        }

        #[test]
        fn k_larger_than_catalogue_is_fine() {
            let scores = vec![0.1, 0.2];
            let top = top_k_unseen(&scores, 10, &[], &[0]);
            assert_eq!(top, vec![1]);
        }
    }
}

pub use beam::{beam_search_path, BeamConfig};
pub use interactive::{run_interactive_session, SessionOutcome, ThresholdUser, UserModel};
pub use irn::{Irn, IrnConfig, MaskType};
pub use kg::KgPf2Inf;
pub use objective::{ObjectiveSet, SetObjectiveRecommender};
pub use pf2inf::{PathAlgorithm, Pf2Inf};
pub use rec2inf::Rec2Inf;
pub use vanilla::Vanilla;

use irs_data::{ItemId, UserId};

/// A recommender that can extend an influence path toward an objective.
pub trait InfluenceRecommender {
    /// Display name for experiment tables (e.g. `"Rec2Inf(Caser)"`).
    fn name(&self) -> String;

    /// Choose the next path item for `user`, given the original `history`,
    /// the `objective`, and the `path` generated so far.  `None` means the
    /// recommender cannot extend the path (e.g. disconnected graph).
    fn next_item(
        &self,
        user: UserId,
        history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId>;
}

/// Algorithm 1: generate an influence path of at most `max_len` items,
/// stopping early when the objective is recommended.
pub fn generate_influence_path<R: InfluenceRecommender + ?Sized>(
    rec: &R,
    user: UserId,
    history: &[ItemId],
    objective: ItemId,
    max_len: usize,
) -> Vec<ItemId> {
    let mut path = Vec::new();
    while path.len() < max_len {
        match rec.next_item(user, history, objective, &path) {
            Some(item) => {
                path.push(item);
                if item == objective {
                    break;
                }
            }
            None => break,
        }
    }
    path
}

/// Argmax over `scores` with the ids yielded by `exclude` removed.
/// Returns `None` when everything is excluded.
pub(crate) fn masked_argmax(
    scores: &[f32],
    exclude: impl Iterator<Item = ItemId>,
) -> Option<ItemId> {
    let mut masked = scores.to_vec();
    for i in exclude {
        if i < masked.len() {
            masked[i] = f32::NEG_INFINITY;
        }
    }
    let (best, &val) = masked
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    val.is_finite().then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted recommender that returns a fixed path.
    struct Scripted(Vec<ItemId>);

    impl InfluenceRecommender for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            _objective: ItemId,
            path: &[ItemId],
        ) -> Option<ItemId> {
            self.0.get(path.len()).copied()
        }
    }

    #[test]
    fn path_stops_at_objective() {
        let rec = Scripted(vec![5, 6, 7, 8]);
        let p = generate_influence_path(&rec, 0, &[1], 7, 10);
        assert_eq!(p, vec![5, 6, 7]);
    }

    #[test]
    fn path_respects_budget() {
        let rec = Scripted(vec![5, 6, 7, 8]);
        let p = generate_influence_path(&rec, 0, &[1], 99, 2);
        assert_eq!(p, vec![5, 6]);
    }

    #[test]
    fn path_stops_when_recommender_gives_up() {
        let rec = Scripted(vec![5]);
        let p = generate_influence_path(&rec, 0, &[1], 99, 10);
        assert_eq!(p, vec![5]);
    }

    #[test]
    fn masked_argmax_skips_excluded() {
        let scores = vec![0.5, 0.9, 0.7];
        assert_eq!(masked_argmax(&scores, [1].into_iter()), Some(2));
        assert_eq!(masked_argmax(&scores, [0, 1, 2].into_iter()), None);
        assert_eq!(masked_argmax(&scores, std::iter::empty()), Some(1));
    }
}
