//! # irs_core — the Influential Recommender System
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`Irn`] — the **Influential Recommender Network** (§III-D): a
//!   Transformer decoder whose attention carries the **Personalized
//!   Impressionability Mask** (PIM).  Input sequences are pre-padded so the
//!   objective item sits at a fixed final position; every query position
//!   may additionally attend to that objective column with weight
//!   `w_t · r_u`, where `r_u = W_U · e(u)` is a learned per-user
//!   impressionability factor.
//! * The two adapted frameworks used as baselines: [`Pf2Inf`] (§III-B,
//!   path-finding over the item co-occurrence graph — Dijkstra or MST) and
//!   [`Rec2Inf`] (§III-C, greedy re-sort of any sequential recommender's
//!   top-k by distance to the objective), plus [`Vanilla`] (the unadapted
//!   recommender).
//! * [`generate_influence_path`] — Algorithm 1: recursively ask the
//!   recommender for the next path item until the objective is reached or
//!   the budget `M` is exhausted.
//!
//! ## The influence-path contract
//!
//! All frameworks implement [`InfluenceRecommender`].  Implementations
//! never recommend an item already present in `history ⊕ path` (a
//! recommender that repeats itself would loop; the paper's Algorithm 1
//! implicitly assumes fresh recommendations).
//!
//! ```
//! use irs_core::{generate_influence_path, InfluenceRecommender};
//!
//! /// A toy recommender that walks the item line toward the objective.
//! struct Walker;
//! impl InfluenceRecommender for Walker {
//!     fn name(&self) -> String { "walker".into() }
//!     fn next_item(&self, _u: usize, history: &[usize], objective: usize,
//!                  path: &[usize]) -> Option<usize> {
//!         let cur = path.last().or_else(|| history.last()).copied()?;
//!         Some(if cur < objective { cur + 1 } else { cur.saturating_sub(1) })
//!     }
//! }
//!
//! let path = generate_influence_path(&Walker, 0, &[2], 5, 10);
//! assert_eq!(path, vec![3, 4, 5]); // stops at the objective
//! ```

pub mod beam;
pub mod interactive;
mod irn;
pub mod kg;
pub mod objective;
pub mod online;
mod pf2inf;
mod rec2inf;
mod vanilla;

pub(crate) mod rec_utils {
    use irs_data::ItemId;

    /// Top-`k` scoring items that appear in neither `history` nor `path`.
    /// Returned in descending score order; ties break toward the lower
    /// item id (the sort is stable over the ascending candidate list), so
    /// the top-1 is exactly "first index attaining the maximum" — the
    /// contract the allocation-free argmax in [`crate::Vanilla`]'s
    /// `next_items_into` relies on.
    pub fn top_k_unseen(
        scores: &[f32],
        k: usize,
        history: &[ItemId],
        path: &[ItemId],
    ) -> Vec<ItemId> {
        let mut idx: Vec<ItemId> =
            (0..scores.len()).filter(|i| !history.contains(i) && !path.contains(i)).collect();
        idx.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn filters_and_orders() {
            let scores = vec![0.1, 0.9, 0.5, 0.7];
            let top = top_k_unseen(&scores, 2, &[1], &[]);
            assert_eq!(top, vec![3, 2]);
        }

        #[test]
        fn k_larger_than_catalogue_is_fine() {
            let scores = vec![0.1, 0.2];
            let top = top_k_unseen(&scores, 10, &[], &[0]);
            assert_eq!(top, vec![1]);
        }
    }
}

pub use beam::{beam_search_path, BeamConfig};
pub use interactive::run_interactive_sessions;
pub use interactive::{
    run_interactive_session, InteractiveSession, SessionOutcome, ThresholdUser, UserModel,
};
pub use irn::{Irn, IrnCacheState, IrnConfig, MaskType};
// Part of `IrnConfig`'s public surface; re-exported so downstream crates
// (e.g. the serving subsystem) can build configs without a direct
// `irs_baselines` dependency.
pub use irs_baselines::NeuralTrainConfig;
// The incremental-cache surface (same rationale: `EncodingLayout` is part
// of `IrnConfig`, `CacheState` of the recommender trait).
pub use irs_nn::{CacheState, EncodingLayout};
pub use kg::KgPf2Inf;
pub use objective::{ObjectiveSet, SetObjectiveRecommender};
pub use online::IncrementalTrainer;
pub use pf2inf::{PathAlgorithm, Pf2Inf};
pub use rec2inf::Rec2Inf;
pub use vanilla::Vanilla;

use irs_data::{ItemId, UserId};

/// The inputs of one `next_item` call, borrowed — the unit of work of the
/// batched path-extension API.
#[derive(Debug, Clone, Copy)]
pub struct NextQuery<'a> {
    /// The user the path is generated for.
    pub user: UserId,
    /// Original viewing history `s_h`.
    pub history: &'a [ItemId],
    /// Objective item `i_t`.
    pub objective: ItemId,
    /// Path generated so far.
    pub path: &'a [ItemId],
}

/// Assemble the per-query scoring inputs shared by every batched
/// `next_items` override: the `(history ⊕ path)` context and the user id
/// of each query.
pub(crate) fn batched_query_parts(queries: &[NextQuery<'_>]) -> (Vec<Vec<ItemId>>, Vec<UserId>) {
    let contexts = queries
        .iter()
        .map(|q| {
            let mut c = q.history.to_vec();
            c.extend_from_slice(q.path);
            c
        })
        .collect();
    let users = queries.iter().map(|q| q.user).collect();
    (contexts, users)
}

/// A recommender that can extend an influence path toward an objective.
pub trait InfluenceRecommender {
    /// Display name for experiment tables (e.g. `"Rec2Inf(Caser)"`).
    fn name(&self) -> String;

    /// Choose the next path item for `user`, given the original `history`,
    /// the `objective`, and the `path` generated so far.  `None` means the
    /// recommender cannot extend the path (e.g. disconnected graph).
    fn next_item(
        &self,
        user: UserId,
        history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId>;

    /// Extend many paths in one call, one answer per query.
    ///
    /// The provided implementation delegates to
    /// [`InfluenceRecommender::next_items_into`] — the `_into` variant is
    /// the one model-backed frameworks override ([`Irn`] via
    /// `score_next_batch`, [`Vanilla`]/[`Rec2Inf`] via their scorer's
    /// batch path), so batching is shared and the allocating wrapper is
    /// just a `Vec` around it.  Overrides must answer each query exactly
    /// as `next_item` would.
    fn next_items(&self, queries: &[NextQuery<'_>]) -> Vec<Option<ItemId>> {
        let mut out = Vec::with_capacity(queries.len());
        self.next_items_into(queries, &mut out);
        out
    }

    /// Like [`InfluenceRecommender::next_items`], but appending the
    /// answers to a caller-owned buffer so a serving loop can reuse one
    /// allocation across batches.  The provided implementation loops over
    /// [`InfluenceRecommender::next_item`] (never through `next_items`,
    /// so neither default recurses into the other); batched models
    /// override this variant directly.
    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        for q in queries {
            out.push(self.next_item(q.user, q.history, q.objective, q.path));
        }
    }

    /// A fresh incremental per-session state for
    /// [`InfluenceRecommender::next_item_cached`], or `None` when this
    /// model has no incremental path (the default).  Models whose encoded
    /// prefix is append-only ([`Irn`] with
    /// [`EncodingLayout::AppendOnly`], the cached baseline families)
    /// return their concrete [`CacheState`].
    fn new_context_cache(&self) -> Option<Box<dyn CacheState>> {
        None
    }

    /// Answer one query using (and updating) a per-session incremental
    /// `cache` previously obtained from
    /// [`InfluenceRecommender::new_context_cache`].  Returns the answer
    /// plus whether the cache was *hit* — i.e. the stored prefix was
    /// extended instead of rebuilt.  The answer must be exactly what
    /// [`InfluenceRecommender::next_item`] would return (the incremental
    /// paths are bitwise-pinned to the cold re-encode by property tests).
    /// The default ignores the cache and answers cold.
    fn next_item_cached(
        &self,
        query: &NextQuery<'_>,
        cache: &mut dyn CacheState,
    ) -> (Option<ItemId>, bool) {
        let _ = cache;
        (self.next_item(query.user, query.history, query.objective, query.path), false)
    }
}

/// A per-session incremental model state tagged with the snapshot
/// generation it was built against.  The serving layer stores these in
/// its session store and hands them back to
/// [`InfluenceRecommender::next_item_cached`]; a hot-swap bumps the
/// registry generation, so stale caches are detected (and rebuilt)
/// rather than replayed against the wrong weights.
pub struct ContextCache {
    /// The model-specific incremental state.
    pub state: Box<dyn CacheState>,
    /// Snapshot generation [`ContextCache::state`] was built against.
    pub generation: u64,
}

impl ContextCache {
    /// Resident heap bytes of the underlying state (for cache budgeting).
    pub fn resident_bytes(&self) -> usize {
        self.state.resident_bytes()
    }
}

/// Algorithm 1: generate an influence path of at most `max_len` items,
/// stopping early when the objective is recommended.
pub fn generate_influence_path<R: InfluenceRecommender + ?Sized>(
    rec: &R,
    user: UserId,
    history: &[ItemId],
    objective: ItemId,
    max_len: usize,
) -> Vec<ItemId> {
    let mut path = Vec::new();
    while path.len() < max_len {
        match rec.next_item(user, history, objective, &path) {
            Some(item) => {
                path.push(item);
                if item == objective {
                    break;
                }
            }
            None => break,
        }
    }
    path
}

/// One path-generation request for the batched Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct PathRequest<'a> {
    /// The user the path is generated for.
    pub user: UserId,
    /// Original viewing history `s_h`.
    pub history: &'a [ItemId],
    /// Objective item `i_t`.
    pub objective: ItemId,
}

/// Batched Algorithm 1: advance every open path by one item per round via
/// [`InfluenceRecommender::next_items`], so a model-backed recommender pays
/// one batched forward per step instead of one forward per user per step.
///
/// Produces exactly the paths `generate_influence_path` would produce
/// request-by-request (a path closes when its objective is recommended,
/// the recommender returns `None`, or the `max_len` budget is exhausted).
pub fn generate_influence_paths<R: InfluenceRecommender + ?Sized>(
    rec: &R,
    requests: &[PathRequest<'_>],
    max_len: usize,
) -> Vec<Vec<ItemId>> {
    let mut paths: Vec<Vec<ItemId>> = vec![Vec::new(); requests.len()];
    let mut open: Vec<usize> =
        if max_len == 0 { Vec::new() } else { (0..requests.len()).collect() };
    while !open.is_empty() {
        let answers = {
            let queries: Vec<NextQuery<'_>> = open
                .iter()
                .map(|&i| NextQuery {
                    user: requests[i].user,
                    history: requests[i].history,
                    objective: requests[i].objective,
                    path: &paths[i],
                })
                .collect();
            rec.next_items(&queries)
        };
        debug_assert_eq!(answers.len(), open.len(), "next_items must answer every query");
        let mut still_open = Vec::with_capacity(open.len());
        for (&i, answer) in open.iter().zip(answers) {
            if let Some(item) = answer {
                paths[i].push(item);
                if item != requests[i].objective && paths[i].len() < max_len {
                    still_open.push(i);
                }
            }
        }
        open = still_open;
    }
    paths
}

/// Argmax over `scores` with the ids yielded by `exclude` removed.
/// Returns `None` when everything is excluded.
pub(crate) fn masked_argmax(
    scores: &[f32],
    exclude: impl Iterator<Item = ItemId>,
) -> Option<ItemId> {
    let mut masked = scores.to_vec();
    for i in exclude {
        if i < masked.len() {
            masked[i] = f32::NEG_INFINITY;
        }
    }
    let (best, &val) = masked
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    val.is_finite().then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted recommender that returns a fixed path.
    struct Scripted(Vec<ItemId>);

    impl InfluenceRecommender for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            _objective: ItemId,
            path: &[ItemId],
        ) -> Option<ItemId> {
            self.0.get(path.len()).copied()
        }
    }

    #[test]
    fn path_stops_at_objective() {
        let rec = Scripted(vec![5, 6, 7, 8]);
        let p = generate_influence_path(&rec, 0, &[1], 7, 10);
        assert_eq!(p, vec![5, 6, 7]);
    }

    #[test]
    fn path_respects_budget() {
        let rec = Scripted(vec![5, 6, 7, 8]);
        let p = generate_influence_path(&rec, 0, &[1], 99, 2);
        assert_eq!(p, vec![5, 6]);
    }

    #[test]
    fn path_stops_when_recommender_gives_up() {
        let rec = Scripted(vec![5]);
        let p = generate_influence_path(&rec, 0, &[1], 99, 10);
        assert_eq!(p, vec![5]);
    }

    #[test]
    fn batched_paths_match_scalar_paths() {
        let rec = Scripted(vec![5, 6, 7, 8]);
        let histories: Vec<Vec<ItemId>> = vec![vec![1], vec![2], vec![3]];
        let requests: Vec<PathRequest<'_>> = histories
            .iter()
            .enumerate()
            .map(|(u, h)| PathRequest { user: u, history: h, objective: 7 })
            .collect();
        let batched = generate_influence_paths(&rec, &requests, 10);
        for (req, path) in requests.iter().zip(&batched) {
            let scalar = generate_influence_path(&rec, req.user, req.history, req.objective, 10);
            assert_eq!(*path, scalar);
        }
    }

    #[test]
    fn batched_paths_handle_empty_request_set_and_zero_budget() {
        let rec = Scripted(vec![5]);
        assert!(generate_influence_paths(&rec, &[], 10).is_empty());
        let h = vec![1];
        let requests = [PathRequest { user: 0, history: &h, objective: 9 }];
        assert_eq!(generate_influence_paths(&rec, &requests, 0), vec![Vec::<ItemId>::new()]);
    }

    #[test]
    fn masked_argmax_skips_excluded() {
        let scores = vec![0.5, 0.9, 0.7];
        assert_eq!(masked_argmax(&scores, [1].into_iter()), Some(2));
        assert_eq!(masked_argmax(&scores, [0, 1, 2].into_iter()), None);
        assert_eq!(masked_argmax(&scores, std::iter::empty()), Some(1));
    }
}
