//! Rec2Inf (§III-C): adapt any sequential recommender to the influential
//! task by greedily re-sorting its top-k candidates by distance to the
//! objective item.

use irs_data::{ItemId, UserId};
use irs_embed::ItemDistance;

use crate::{rec_utils::top_k_unseen, InfluenceRecommender, NextQuery};
use irs_baselines::SequentialScorer;

/// The Rec2Inf framework wrapping a backbone scorer and an item-distance
/// function.
pub struct Rec2Inf<S, D> {
    scorer: S,
    distance: D,
    k: usize,
}

impl<S: SequentialScorer, D: ItemDistance> Rec2Inf<S, D> {
    /// Wrap `scorer` with candidate-set size `k` (the paper uses `k = 50`;
    /// `k` doubles as the aggressiveness-degree knob in Fig. 7).
    pub fn new(scorer: S, distance: D, k: usize) -> Self {
        assert!(k >= 1, "candidate set must be non-empty");
        Rec2Inf { scorer, distance, k }
    }

    /// Candidate-set size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Change the candidate-set size (aggressiveness sweep).
    pub fn set_k(&mut self, k: usize) {
        assert!(k >= 1, "candidate set must be non-empty");
        self.k = k;
    }

    /// Access the backbone scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// Greedy Rec2Inf step given precomputed scores: re-sort the top-k
    /// unseen candidates by distance to the objective.
    fn pick(
        &self,
        scores: &[f32],
        history: &[ItemId],
        path: &[ItemId],
        objective: ItemId,
    ) -> Option<ItemId> {
        let candidates = top_k_unseen(scores, self.k, history, path);
        // Ties (e.g. items with identical genre vectors all at distance 0)
        // break in favour of the objective itself — "when k is set to the
        // total number of items, it may recommend the objective item
        // directly which has zero distance to itself" (§IV-D3).
        candidates.into_iter().min_by(|&a, &b| {
            let da = self.distance.distance(a, objective);
            let db = self.distance.distance(b, objective);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a != objective).cmp(&(b != objective)))
        })
    }
}

impl<S: SequentialScorer, D: ItemDistance> InfluenceRecommender for Rec2Inf<S, D> {
    fn name(&self) -> String {
        format!("Rec2Inf({})", self.scorer.name())
    }

    fn next_item(
        &self,
        user: UserId,
        history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        let mut context = history.to_vec();
        context.extend_from_slice(path);
        let scores = self.scorer.score(user, &context);
        self.pick(&scores, history, path, objective)
    }

    /// One `score_batch` call over all queries, then the greedy re-sort per
    /// query.
    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        let (contexts, users) = crate::batched_query_parts(queries);
        let ctx_refs: Vec<&[ItemId]> = contexts.iter().map(Vec::as_slice).collect();
        let scores = self.scorer.score_batch(&users, &ctx_refs);
        out.extend(
            queries.iter().zip(&scores).map(|(q, s)| self.pick(s, q.history, q.path, q.objective)),
        );
    }

    fn new_context_cache(&self) -> Option<Box<dyn crate::CacheState>> {
        self.scorer.new_incremental_state()
    }

    fn next_item_cached(
        &self,
        query: &NextQuery<'_>,
        cache: &mut dyn crate::CacheState,
    ) -> (Option<ItemId>, bool) {
        let mut context = query.history.to_vec();
        context.extend_from_slice(query.path);
        let (scores, hit) = self.scorer.score_incremental(query.user, &context, cache);
        (self.pick(&scores, query.history, query.path, query.objective), hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_influence_path;
    use irs_baselines::Pop;

    /// 1-D coordinate distance: |a − b|.
    struct LineDistance;

    impl ItemDistance for LineDistance {
        fn distance(&self, a: ItemId, b: ItemId) -> f32 {
            (a as f32 - b as f32).abs()
        }
    }

    #[test]
    fn k1_degenerates_to_vanilla_argmax() {
        // Counts make item 9 most popular, then 8, 7, ...
        let pop = Pop::from_counts(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let rec = Rec2Inf::new(pop, LineDistance, 1);
        // With k=1 the only candidate is the most popular unseen item,
        // regardless of the objective.
        let next = rec.next_item(0, &[0], 0, &[]).unwrap();
        assert_eq!(next, 9);
    }

    #[test]
    fn larger_k_moves_toward_objective() {
        let pop = Pop::from_counts(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let rec = Rec2Inf::new(pop, LineDistance, 5);
        // Candidates {9,8,7,6,5}; closest to objective 0 is 5.
        let next = rec.next_item(0, &[0], 0, &[]).unwrap();
        assert_eq!(next, 5);
    }

    #[test]
    fn reaches_objective_when_k_covers_it() {
        let pop = Pop::from_counts(&[10, 9, 8, 7, 6, 5, 4, 3, 2, 1]);
        let rec = Rec2Inf::new(pop, LineDistance, 10);
        let p = generate_influence_path(&rec, 0, &[9], 3, 20);
        assert_eq!(*p.last().unwrap(), 3, "objective inside top-k must be picked directly");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn never_repeats_history_or_path_items() {
        let pop = Pop::from_counts(&[5, 5, 5, 5, 5]);
        let rec = Rec2Inf::new(pop, LineDistance, 5);
        let p = generate_influence_path(&rec, 0, &[0, 1], 4, 10);
        let mut seen = vec![0, 1];
        for &i in &p {
            assert!(!seen.contains(&i), "item {i} repeated");
            seen.push(i);
        }
    }
}
