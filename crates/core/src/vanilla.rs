//! Vanilla baselines: the unadapted recommender repeatedly recommends its
//! top unseen item, ignoring the objective (§IV-D1, "Vanilla" rows of
//! Table III).

use irs_data::{ItemId, UserId};

use crate::{rec_utils::top_k_unseen, InfluenceRecommender, NextQuery};
use irs_baselines::SequentialScorer;

/// A plain recommender driven solely by the user's current interest.
pub struct Vanilla<S> {
    scorer: S,
}

impl<S: SequentialScorer> Vanilla<S> {
    /// Wrap a scorer.
    pub fn new(scorer: S) -> Self {
        Vanilla { scorer }
    }

    /// Access the backbone scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }
}

impl<S: SequentialScorer> InfluenceRecommender for Vanilla<S> {
    fn name(&self) -> String {
        format!("Vanilla({})", self.scorer.name())
    }

    fn next_item(
        &self,
        user: UserId,
        history: &[ItemId],
        _objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        let mut context = history.to_vec();
        context.extend_from_slice(path);
        let scores = self.scorer.score(user, &context);
        top_k_unseen(&scores, 1, history, path).into_iter().next()
    }

    /// One `score_batch` call over all queries instead of a scalar forward
    /// per query.
    fn next_items(&self, queries: &[NextQuery<'_>]) -> Vec<Option<ItemId>> {
        let (contexts, users) = crate::batched_query_parts(queries);
        let ctx_refs: Vec<&[ItemId]> = contexts.iter().map(Vec::as_slice).collect();
        let scores = self.scorer.score_batch(&users, &ctx_refs);
        queries
            .iter()
            .zip(&scores)
            .map(|(q, s)| top_k_unseen(s, 1, q.history, q.path).into_iter().next())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_influence_path;
    use irs_baselines::Pop;

    #[test]
    fn recommends_most_popular_unseen_items_in_order() {
        let pop = Pop::from_counts(&[1, 2, 3, 4, 5]);
        let rec = Vanilla::new(pop);
        let p = generate_influence_path(&rec, 0, &[4], 0, 3);
        assert_eq!(p, vec![3, 2, 1]);
    }

    #[test]
    fn reaches_objective_only_by_accident() {
        let pop = Pop::from_counts(&[1, 2, 3, 4, 5]);
        let rec = Vanilla::new(pop);
        // Objective 3 happens to be the top unseen item.
        let p = generate_influence_path(&rec, 0, &[4], 3, 5);
        assert_eq!(p, vec![3]);
    }
}
