//! Vanilla baselines: the unadapted recommender repeatedly recommends its
//! top unseen item, ignoring the objective (§IV-D1, "Vanilla" rows of
//! Table III).

use irs_data::{ItemId, UserId};
use parking_lot::Mutex;

use crate::{rec_utils::top_k_unseen, CacheState, InfluenceRecommender, NextQuery};
use irs_baselines::SequentialScorer;

/// A plain recommender driven solely by the user's current interest.
pub struct Vanilla<S> {
    scorer: S,
    /// Reused context/score buffers for the single-query serve path, so
    /// steady-state requests against an allocation-free scorer (e.g.
    /// [`irs_baselines::Pop`] via `score_into`) allocate nothing.  Held
    /// only while assembling one answer; a trained scorer stays `Sync`.
    scratch: Mutex<VanillaScratch>,
}

#[derive(Default)]
struct VanillaScratch {
    context: Vec<ItemId>,
    scores: Vec<f32>,
}

/// Allocation-free top-1 of [`top_k_unseen`]: the first unseen index
/// attaining the maximum score (matching the stable sort's tie-break
/// toward lower item ids — strictly-greater replacement over an
/// ascending scan).
fn argmax_unseen(scores: &[f32], history: &[ItemId], path: &[ItemId]) -> Option<ItemId> {
    let mut best: Option<(ItemId, f32)> = None;
    for (i, &s) in scores.iter().enumerate() {
        if history.contains(&i) || path.contains(&i) {
            continue;
        }
        if best.is_none_or(|(_, b)| s > b) {
            best = Some((i, s));
        }
    }
    best.map(|(i, _)| i)
}

impl<S: SequentialScorer> Vanilla<S> {
    /// Wrap a scorer.
    pub fn new(scorer: S) -> Self {
        Vanilla { scorer, scratch: Mutex::new(VanillaScratch::default()) }
    }

    /// Access the backbone scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }
}

impl<S: SequentialScorer> InfluenceRecommender for Vanilla<S> {
    fn name(&self) -> String {
        format!("Vanilla({})", self.scorer.name())
    }

    fn next_item(
        &self,
        user: UserId,
        history: &[ItemId],
        _objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        let mut context = history.to_vec();
        context.extend_from_slice(path);
        let scores = self.scorer.score(user, &context);
        top_k_unseen(&scores, 1, history, path).into_iter().next()
    }

    /// Single queries run through the reusable scratch buffers and the
    /// scorer's `score_into` (no allocation in steady state); larger
    /// batches share one `score_batch` call instead of a scalar forward
    /// per query.
    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        if let [q] = queries {
            let mut scratch = self.scratch.lock();
            let VanillaScratch { context, scores } = &mut *scratch;
            context.clear();
            context.extend_from_slice(q.history);
            context.extend_from_slice(q.path);
            self.scorer.score_into(q.user, context, scores);
            out.push(argmax_unseen(scores, q.history, q.path));
            return;
        }
        let (contexts, users) = crate::batched_query_parts(queries);
        let ctx_refs: Vec<&[ItemId]> = contexts.iter().map(Vec::as_slice).collect();
        let scores = self.scorer.score_batch(&users, &ctx_refs);
        out.extend(
            queries
                .iter()
                .zip(&scores)
                .map(|(q, s)| top_k_unseen(s, 1, q.history, q.path).into_iter().next()),
        );
    }

    fn new_context_cache(&self) -> Option<Box<dyn CacheState>> {
        self.scorer.new_incremental_state()
    }

    fn next_item_cached(
        &self,
        query: &NextQuery<'_>,
        cache: &mut dyn CacheState,
    ) -> (Option<ItemId>, bool) {
        let mut context = query.history.to_vec();
        context.extend_from_slice(query.path);
        let (scores, hit) = self.scorer.score_incremental(query.user, &context, cache);
        (argmax_unseen(&scores, query.history, query.path), hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_influence_path;
    use irs_baselines::Pop;

    #[test]
    fn recommends_most_popular_unseen_items_in_order() {
        let pop = Pop::from_counts(&[1, 2, 3, 4, 5]);
        let rec = Vanilla::new(pop);
        let p = generate_influence_path(&rec, 0, &[4], 0, 3);
        assert_eq!(p, vec![3, 2, 1]);
    }

    #[test]
    fn reaches_objective_only_by_accident() {
        let pop = Pop::from_counts(&[1, 2, 3, 4, 5]);
        let rec = Vanilla::new(pop);
        // Objective 3 happens to be the top unseen item.
        let p = generate_influence_path(&rec, 0, &[4], 3, 5);
        assert_eq!(p, vec![3]);
    }

    #[test]
    fn single_query_scratch_path_matches_next_item() {
        let pop = Pop::from_counts(&[4, 4, 9, 1, 4]);
        let rec = Vanilla::new(pop);
        for history in [vec![], vec![2], vec![2, 0], vec![0, 1, 2, 3, 4]] {
            let q = NextQuery { user: 0, history: &history, objective: 3, path: &[] };
            let mut out = Vec::new();
            rec.next_items_into(std::slice::from_ref(&q), &mut out);
            assert_eq!(out, vec![rec.next_item(0, &history, 3, &[])], "history {history:?}");
        }
    }

    #[test]
    fn argmax_unseen_ties_break_toward_lower_ids() {
        assert_eq!(argmax_unseen(&[1.0, 2.0, 2.0, 0.5], &[], &[]), Some(1));
        assert_eq!(argmax_unseen(&[1.0, 2.0, 2.0, 0.5], &[1], &[]), Some(2));
        assert_eq!(argmax_unseen(&[1.0], &[0], &[]), None);
    }
}
