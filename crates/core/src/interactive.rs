//! Stepwise user dynamics — the paper's future-work direction §V-(4).
//!
//! The offline protocol assumes the user passively accepts every
//! recommendation.  This module drops that assumption: a [`UserModel`]
//! accepts or rejects each recommended item, and
//! [`run_interactive_session`] lets the recommender *re-plan* after a
//! rejection ("the IRS needs to alter its strategy by recommending another
//! item to persuade the user towards the objective").
//!
//! Rejected items are excluded from subsequent proposals via the
//! [`InfluenceRecommender`] path argument trick: the driver keeps a
//! blocklist and asks for alternatives until the user accepts, the
//! per-step patience runs out, or the path budget is exhausted.

use irs_data::{ItemId, UserId};

use crate::{InfluenceRecommender, NextQuery, PathRequest};

/// A simulated user deciding whether to accept a recommended item.
pub trait UserModel {
    /// Decide on `item` given the accepted context so far (history ⊕
    /// accepted path items).  Implementations may be stochastic but should
    /// be deterministic for a fixed internal seed to keep experiments
    /// reproducible.
    fn accepts(&mut self, user: UserId, context: &[ItemId], item: ItemId) -> bool;
}

/// Accepts an item iff its probability under a scoring function exceeds a
/// threshold percentile of the score distribution.
///
/// `quantile = 0.0` accepts everything (the paper's passive assumption);
/// higher quantiles simulate pickier users.
pub struct ThresholdUser<F> {
    score_fn: F,
    quantile: f32,
}

impl<F> ThresholdUser<F>
where
    F: FnMut(UserId, &[ItemId]) -> Vec<f32>,
{
    /// Create a user that accepts items scoring above the given quantile
    /// of the candidate distribution.
    pub fn new(score_fn: F, quantile: f32) -> Self {
        assert!((0.0..1.0).contains(&quantile), "quantile must be in [0,1)");
        ThresholdUser { score_fn, quantile }
    }
}

impl<F> UserModel for ThresholdUser<F>
where
    F: FnMut(UserId, &[ItemId]) -> Vec<f32>,
{
    fn accepts(&mut self, user: UserId, context: &[ItemId], item: ItemId) -> bool {
        let scores = (self.score_fn)(user, context);
        if item >= scores.len() {
            return false;
        }
        let mut sorted = scores.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() as f32 - 1.0) * self.quantile) as usize;
        scores[item] >= sorted[idx]
    }
}

/// Outcome of one interactive persuasion session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Items the user accepted, in order (the realised influence path).
    pub accepted: Vec<ItemId>,
    /// Items the user rejected, in order of proposal.
    pub rejected: Vec<ItemId>,
    /// Whether the objective was accepted.
    pub reached_objective: bool,
    /// Total number of proposals made (accepted + rejected).
    pub proposals: usize,
}

impl SessionOutcome {
    /// Rejection rate over all proposals.
    pub fn rejection_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.rejected.len() as f64 / self.proposals as f64
        }
    }
}

/// The state machine of one interactive persuasion session.
///
/// Owns everything the drivers ([`run_interactive_session`],
/// [`run_interactive_sessions`]) and the online serving subsystem
/// (`irs_serve`) need between proposals: the accepted prefix, the
/// per-step rejection blocklist, and the `accepted ⊕ rejected` virtual
/// path shown to the recommender so rejected items are never proposed
/// again.
///
/// Protocol: while [`InteractiveSession::is_done`] is false, ask the
/// recommender for the next item of [`InteractiveSession::query`], then
/// report the user's verdict with [`InteractiveSession::record`] (or
/// [`InteractiveSession::record_give_up`] when the recommender returned
/// `None`).  The session closes when the objective is accepted, the
/// budget of `max_len` accepted items is reached, per-step patience is
/// exhausted, or the recommender gives up.
#[derive(Debug, Clone)]
pub struct InteractiveSession {
    user: UserId,
    history: Vec<ItemId>,
    objective: ItemId,
    max_len: usize,
    patience: usize,
    accepted: Vec<ItemId>,
    rejected: Vec<ItemId>,
    proposals: usize,
    step_rejections: usize,
    reached_objective: bool,
    /// `accepted ⊕ rejected`, the virtual path shown to the recommender.
    virtual_path: Vec<ItemId>,
    done: bool,
}

impl InteractiveSession {
    /// Open a session for `user` with the given viewing history and
    /// persuasion objective.  `max_len` bounds accepted items, `patience`
    /// bounds consecutive rejections within one step.
    pub fn new(
        user: UserId,
        history: Vec<ItemId>,
        objective: ItemId,
        max_len: usize,
        patience: usize,
    ) -> Self {
        InteractiveSession {
            user,
            history,
            objective,
            max_len,
            patience,
            accepted: Vec::new(),
            rejected: Vec::new(),
            proposals: 0,
            step_rejections: 0,
            reached_objective: false,
            virtual_path: Vec::new(),
            done: max_len == 0,
        }
    }

    /// The session's user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The persuasion objective.
    pub fn objective(&self) -> ItemId {
        self.objective
    }

    /// The original viewing history.
    pub fn history(&self) -> &[ItemId] {
        &self.history
    }

    /// Items accepted so far (the realised influence path prefix).
    pub fn accepted(&self) -> &[ItemId] {
        &self.accepted
    }

    /// Items rejected so far, in proposal order.
    pub fn rejected(&self) -> &[ItemId] {
        &self.rejected
    }

    /// Whether the session is closed (objective reached, budget or
    /// patience exhausted, or recommender gave up).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether the objective has been accepted.
    pub fn reached_objective(&self) -> bool {
        self.reached_objective
    }

    /// Total proposals made so far (accepted + rejected).
    pub fn proposals(&self) -> usize {
        self.proposals
    }

    /// The context the user decides against: `history ⊕ accepted`.
    pub fn context(&self) -> Vec<ItemId> {
        let mut c = self.history.clone();
        c.extend_from_slice(&self.accepted);
        c
    }

    /// The recommender query for the next proposal.  Must not be called on
    /// a closed session (there is nothing left to ask).
    pub fn query(&self) -> NextQuery<'_> {
        debug_assert!(!self.done, "query() on a closed session");
        NextQuery {
            user: self.user,
            history: &self.history,
            objective: self.objective,
            path: &self.virtual_path,
        }
    }

    /// The recommender could not extend the path: close the session.
    pub fn record_give_up(&mut self) {
        self.done = true;
    }

    /// Record the user's verdict on a proposed `item` and advance the
    /// state machine exactly as the offline drivers do.
    pub fn record(&mut self, item: ItemId, accepted: bool) {
        debug_assert!(!self.done, "record() on a closed session");
        self.proposals += 1;
        if accepted {
            self.accepted.push(item);
            self.step_rejections = 0;
            if item == self.objective {
                self.reached_objective = true;
                self.done = true;
            } else if self.accepted.len() >= self.max_len {
                self.done = true;
            } else {
                self.virtual_path.clear();
                self.virtual_path.extend_from_slice(&self.accepted);
                self.virtual_path.extend_from_slice(&self.rejected);
            }
        } else {
            self.rejected.push(item);
            self.step_rejections += 1;
            if self.step_rejections > self.patience {
                self.done = true;
            } else {
                self.virtual_path.push(item);
            }
        }
    }

    /// Snapshot the session as a [`SessionOutcome`].
    pub fn outcome(&self) -> SessionOutcome {
        SessionOutcome {
            accepted: self.accepted.clone(),
            rejected: self.rejected.clone(),
            reached_objective: self.reached_objective,
            proposals: self.proposals,
        }
    }
}

/// Run an interactive persuasion session.
///
/// At each step the recommender proposes the next path item for the
/// *accepted* context; if the user rejects it, the item joins a blocklist
/// and the recommender is asked again (up to `patience` rejections per
/// step).  The session ends when the objective is accepted, the budget of
/// `max_len` accepted items is reached, per-step patience is exhausted, or
/// the recommender gives up.
pub fn run_interactive_session<R, U>(
    rec: &R,
    user_model: &mut U,
    user: UserId,
    history: &[ItemId],
    objective: ItemId,
    max_len: usize,
    patience: usize,
) -> SessionOutcome
where
    R: InfluenceRecommender + ?Sized,
    U: UserModel + ?Sized,
{
    let mut session = InteractiveSession::new(user, history.to_vec(), objective, max_len, patience);
    while !session.is_done() {
        let q = session.query();
        let Some(item) = rec.next_item(q.user, q.history, q.objective, q.path) else {
            session.record_give_up();
            break;
        };
        let context = session.context();
        let verdict = user_model.accepts(user, &context, item);
        session.record(item, verdict);
    }
    session.outcome()
}

/// Run many interactive persuasion sessions in lockstep: each round every
/// live session requests one proposal, and all requests share a single
/// [`InfluenceRecommender::next_items`] call (one batched forward per
/// round for model-backed recommenders).
///
/// Each session follows exactly the [`run_interactive_session`] protocol —
/// for a deterministic user model the outcomes are identical — but the
/// user model is consulted in round-robin order across sessions rather
/// than session by session.
pub fn run_interactive_sessions<R, U>(
    rec: &R,
    user_model: &mut U,
    requests: &[PathRequest<'_>],
    max_len: usize,
    patience: usize,
) -> Vec<SessionOutcome>
where
    R: InfluenceRecommender + ?Sized,
    U: UserModel + ?Sized,
{
    let mut sessions: Vec<InteractiveSession> = requests
        .iter()
        .map(|r| {
            InteractiveSession::new(r.user, r.history.to_vec(), r.objective, max_len, patience)
        })
        .collect();
    let mut live: Vec<usize> =
        sessions.iter().enumerate().filter(|(_, s)| !s.is_done()).map(|(i, _)| i).collect();

    while !live.is_empty() {
        let answers = {
            let queries: Vec<NextQuery<'_>> = live.iter().map(|&i| sessions[i].query()).collect();
            rec.next_items(&queries)
        };
        let mut still_live = Vec::with_capacity(live.len());
        for (&i, answer) in live.iter().zip(answers) {
            let s = &mut sessions[i];
            let Some(item) = answer else {
                s.record_give_up();
                continue;
            };
            let context = s.context();
            let verdict = user_model.accepts(s.user(), &context, item);
            s.record(item, verdict);
            if !s.is_done() {
                still_live.push(i);
            }
        }
        live = still_live;
    }

    sessions.iter().map(InteractiveSession::outcome).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recommender that proposes items 10, 11, 12, … skipping anything in
    /// the path, and finally the objective.
    struct Counting {
        objective_after: usize,
    }

    impl InfluenceRecommender for Counting {
        fn name(&self) -> String {
            "counting".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            _history: &[ItemId],
            objective: ItemId,
            path: &[ItemId],
        ) -> Option<ItemId> {
            if path.len() >= self.objective_after {
                return Some(objective);
            }
            let mut candidate = 10;
            while path.contains(&candidate) {
                candidate += 1;
            }
            Some(candidate)
        }
    }

    /// Accepts everything.
    struct Agreeable;

    impl UserModel for Agreeable {
        fn accepts(&mut self, _u: UserId, _c: &[ItemId], _i: ItemId) -> bool {
            true
        }
    }

    /// Rejects a fixed set of items.
    struct Picky(Vec<ItemId>);

    impl UserModel for Picky {
        fn accepts(&mut self, _u: UserId, _c: &[ItemId], i: ItemId) -> bool {
            !self.0.contains(&i)
        }
    }

    #[test]
    fn passive_user_reproduces_offline_protocol() {
        let rec = Counting { objective_after: 3 };
        let mut user = Agreeable;
        let out = run_interactive_session(&rec, &mut user, 0, &[1], 99, 10, 3);
        assert!(out.reached_objective);
        assert_eq!(out.accepted.len(), 4); // 3 fillers + objective
        assert!(out.rejected.is_empty());
        assert_eq!(out.rejection_rate(), 0.0);
    }

    #[test]
    fn rejected_items_are_replaced_not_repeated() {
        let rec = Counting { objective_after: 2 };
        let mut user = Picky(vec![10]); // rejects the first proposal
        let out = run_interactive_session(&rec, &mut user, 0, &[1], 99, 10, 3);
        assert!(out.reached_objective);
        assert_eq!(out.rejected, vec![10]);
        assert!(!out.accepted.contains(&10));
        // The replacement proposal (11) was accepted instead.
        assert!(out.accepted.contains(&11));
    }

    #[test]
    fn patience_bounds_per_step_rejections() {
        let rec = Counting { objective_after: 100 };
        // Rejects everything the recommender can propose.
        struct Never;
        impl UserModel for Never {
            fn accepts(&mut self, _u: UserId, _c: &[ItemId], _i: ItemId) -> bool {
                false
            }
        }
        let out = run_interactive_session(&rec, &mut Never, 0, &[1], 99, 10, 2);
        assert!(!out.reached_objective);
        assert!(out.accepted.is_empty());
        assert_eq!(out.rejected.len(), 3); // patience 2 => 3 proposals then stop
    }

    #[test]
    fn budget_caps_accepted_items() {
        let rec = Counting { objective_after: 100 };
        let out = run_interactive_session(&rec, &mut Agreeable, 0, &[1], 99, 4, 3);
        assert_eq!(out.accepted.len(), 4);
        assert!(!out.reached_objective);
    }

    #[test]
    fn lockstep_sessions_match_scalar_driver() {
        // Deterministic recommender + user model: the batched driver must
        // reproduce the scalar outcomes exactly, session by session.
        let rec = Counting { objective_after: 3 };
        let histories: Vec<Vec<ItemId>> = vec![vec![1], vec![2, 3], vec![4]];
        let requests: Vec<PathRequest<'_>> = histories
            .iter()
            .enumerate()
            .map(|(u, h)| PathRequest { user: u, history: h, objective: 99 })
            .collect();
        let batched = run_interactive_sessions(&rec, &mut Picky(vec![10, 12]), &requests, 10, 3);
        for (req, out) in requests.iter().zip(&batched) {
            let scalar = run_interactive_session(
                &rec,
                &mut Picky(vec![10, 12]),
                req.user,
                req.history,
                req.objective,
                10,
                3,
            );
            assert_eq!(*out, scalar, "session for user {} diverged", req.user);
        }
    }

    #[test]
    fn lockstep_sessions_respect_patience_and_budget() {
        struct Never;
        impl UserModel for Never {
            fn accepts(&mut self, _u: UserId, _c: &[ItemId], _i: ItemId) -> bool {
                false
            }
        }
        let rec = Counting { objective_after: 100 };
        let h = vec![1];
        let requests = [PathRequest { user: 0, history: &h, objective: 99 }];
        let out = run_interactive_sessions(&rec, &mut Never, &requests, 10, 2);
        assert_eq!(out[0].rejected.len(), 3);
        assert!(!out[0].reached_objective);

        let out = run_interactive_sessions(&rec, &mut Agreeable, &requests, 4, 2);
        assert_eq!(out[0].accepted.len(), 4);
    }

    #[test]
    fn threshold_user_accepts_top_items_only() {
        // Scores favour small item ids; a 0.5-quantile user accepts the
        // upper half.
        let mut user =
            ThresholdUser::new(|_u, _c: &[ItemId]| vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.0], 0.5);
        assert!(user.accepts(0, &[], 0));
        assert!(user.accepts(0, &[], 2));
        assert!(!user.accepts(0, &[], 5));
    }
}
