//! KG-enhanced Pf2Inf — the paper's future-work direction §V-(1) realised
//! on the [`irs_graph::TypedItemGraph`]: influence paths may traverse both
//! behavioural co-occurrence edges and content (shared-genre) edges, with
//! per-relation costs steering how willing the planner is to make a purely
//! semantic hop.

use std::collections::HashMap;

use parking_lot::Mutex;

use irs_data::{Dataset, ItemId, UserId};
use irs_graph::{RelationCosts, TypedItemGraph};

use crate::InfluenceRecommender;

/// Memoised full paths keyed by `(source, objective)`; `None` records an
/// unreachable pair so it is not re-searched.
type PathCache = Mutex<HashMap<(ItemId, ItemId), Option<Vec<ItemId>>>>;

/// Pf2Inf over a multi-relational item graph.
pub struct KgPf2Inf {
    graph: TypedItemGraph,
    costs: RelationCosts,
    cache: PathCache,
}

impl KgPf2Inf {
    /// Build from a dataset with the given relation costs.
    pub fn from_dataset(dataset: &Dataset, costs: RelationCosts) -> Self {
        KgPf2Inf {
            graph: TypedItemGraph::from_dataset(dataset, 4),
            costs,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Wrap an existing typed graph.
    pub fn new(graph: TypedItemGraph, costs: RelationCosts) -> Self {
        KgPf2Inf { graph, costs, cache: Mutex::new(HashMap::new()) }
    }

    /// The underlying typed graph.
    pub fn graph(&self) -> &TypedItemGraph {
        &self.graph
    }

    fn full_path(&self, source: ItemId, objective: ItemId) -> Option<Vec<ItemId>> {
        if let Some(p) = self.cache.lock().get(&(source, objective)) {
            return p.clone();
        }
        let path =
            self.graph.cheapest_path(source, objective, &self.costs).map(|p| p[1..].to_vec());
        self.cache.lock().insert((source, objective), path.clone());
        path
    }
}

impl InfluenceRecommender for KgPf2Inf {
    fn name(&self) -> String {
        "Pf2Inf(KG)".into()
    }

    fn next_item(
        &self,
        _user: UserId,
        history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        let source = *history.last()?;
        let full = self.full_path(source, objective)?;
        full.get(path.len()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_influence_path;

    /// Two behavioural islands bridged only by a shared genre.
    fn bridged_dataset() -> Dataset {
        Dataset {
            name: "bridge".into(),
            num_users: 2,
            num_items: 6,
            sequences: vec![vec![0, 1, 2], vec![3, 4, 5]],
            genres: vec![vec![1], vec![1], vec![0], vec![0], vec![2], vec![2]],
            genre_names: vec!["A".into(), "B".into(), "C".into()],
            item_names: vec![],
        }
    }

    #[test]
    fn kg_paths_cross_behavioural_islands() {
        let d = bridged_dataset();
        let rec = KgPf2Inf::from_dataset(&d, RelationCosts::default());
        let p = generate_influence_path(&rec, 0, &[0], 5, 10);
        assert_eq!(*p.last().unwrap(), 5, "KG path must reach the other island");
        // The plain co-occurrence Pf2Inf cannot.
        let plain = crate::Pf2Inf::new(
            irs_graph::ItemGraph::from_sequences(d.num_items, &d.sequences),
            crate::PathAlgorithm::Dijkstra,
        );
        assert!(generate_influence_path(&plain, 0, &[0], 5, 10).is_empty());
    }

    #[test]
    fn budget_and_empty_history_are_handled() {
        let d = bridged_dataset();
        let rec = KgPf2Inf::from_dataset(&d, RelationCosts::default());
        assert!(generate_influence_path(&rec, 0, &[], 5, 10).is_empty());
        let p = generate_influence_path(&rec, 0, &[0], 5, 2);
        assert_eq!(p.len(), 2);
    }
}
