//! Pf2Inf (§III-B): influence paths as graph path-finding.
//!
//! The last item of the viewing history is taken as the user's recent
//! interest; a path to the objective is found on the item co-occurrence
//! graph with Dijkstra (shortest path) or along the minimum-spanning-tree
//! path (the paper's MST baseline).  The first `M` items along that path
//! (excluding the start vertex) form the influence path.

use std::collections::HashMap;

use parking_lot::Mutex;

use irs_data::{ItemId, UserId};
use irs_graph::{dijkstra_path, ItemGraph, MstPaths};

use crate::InfluenceRecommender;

/// Which path-finding algorithm backs the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathAlgorithm {
    /// Shortest path (Dijkstra).
    Dijkstra,
    /// Path along the minimum spanning tree.
    Mst,
}

/// Memoised full paths keyed by `(source, objective)`; `None` records an
/// unreachable pair so it is not re-searched.
type PathCache = Mutex<HashMap<(ItemId, ItemId), Option<Vec<ItemId>>>>;

/// The Pf2Inf framework.
pub struct Pf2Inf {
    graph: ItemGraph,
    mst: Option<MstPaths>,
    algorithm: PathAlgorithm,
    cache: PathCache,
}

impl Pf2Inf {
    /// Build from an item graph.
    pub fn new(graph: ItemGraph, algorithm: PathAlgorithm) -> Self {
        let mst = matches!(algorithm, PathAlgorithm::Mst).then(|| MstPaths::build(&graph));
        Pf2Inf { graph, mst, algorithm, cache: Mutex::new(HashMap::new()) }
    }

    /// The underlying item graph.
    pub fn graph(&self) -> &ItemGraph {
        &self.graph
    }

    fn full_path(&self, source: ItemId, objective: ItemId) -> Option<Vec<ItemId>> {
        if let Some(p) = self.cache.lock().get(&(source, objective)) {
            return p.clone();
        }
        let path = match self.algorithm {
            PathAlgorithm::Dijkstra => dijkstra_path(&self.graph, source, objective),
            PathAlgorithm::Mst => {
                self.mst.as_ref().expect("MST built in constructor").tree_path(source, objective)
            }
        }
        // Drop the start vertex: the influence path starts after the
        // user's last history item.
        .map(|p| p[1..].to_vec());
        self.cache.lock().insert((source, objective), path.clone());
        path
    }
}

impl InfluenceRecommender for Pf2Inf {
    fn name(&self) -> String {
        match self.algorithm {
            PathAlgorithm::Dijkstra => "Pf2Inf(Dijkstra)".into(),
            PathAlgorithm::Mst => "Pf2Inf(MST)".into(),
        }
    }

    fn next_item(
        &self,
        _user: UserId,
        history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        let source = *history.last()?;
        let full = self.full_path(source, objective)?;
        full.get(path.len()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_influence_path;

    fn graph() -> ItemGraph {
        // 0-1-2-3-4 line plus a 0-5-4 shortcut.
        ItemGraph::from_sequences(6, &[vec![0, 1, 2, 3, 4], vec![0, 5, 4]])
    }

    #[test]
    fn dijkstra_takes_shortcut() {
        let rec = Pf2Inf::new(graph(), PathAlgorithm::Dijkstra);
        let p = generate_influence_path(&rec, 0, &[3, 0], 4, 10);
        assert_eq!(p, vec![5, 4]);
    }

    #[test]
    fn path_excludes_source_item() {
        let rec = Pf2Inf::new(graph(), PathAlgorithm::Dijkstra);
        let p = generate_influence_path(&rec, 0, &[0], 4, 10);
        assert!(!p.contains(&0), "source (last history item) must not be repeated");
        assert_eq!(*p.last().unwrap(), 4);
    }

    #[test]
    fn unreachable_objective_yields_empty_path() {
        let g = ItemGraph::from_sequences(4, &[vec![0, 1], vec![2, 3]]);
        let rec = Pf2Inf::new(g, PathAlgorithm::Dijkstra);
        let p = generate_influence_path(&rec, 0, &[0], 3, 10);
        assert!(p.is_empty());
    }

    #[test]
    fn budget_truncates_long_paths() {
        let rec = Pf2Inf::new(graph(), PathAlgorithm::Dijkstra);
        let p = generate_influence_path(&rec, 0, &[0], 4, 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn mst_paths_follow_tree_edges() {
        let rec = Pf2Inf::new(graph(), PathAlgorithm::Mst);
        let p = generate_influence_path(&rec, 0, &[0], 4, 10);
        assert!(!p.is_empty());
        assert_eq!(*p.last().unwrap(), 4);
        // Consecutive items on the path must be graph edges.
        let mut prev = 0;
        for &i in &p {
            assert!(rec.graph().has_edge(prev, i));
            prev = i;
        }
    }

    #[test]
    fn empty_history_yields_no_path() {
        let rec = Pf2Inf::new(graph(), PathAlgorithm::Dijkstra);
        assert!(generate_influence_path(&rec, 0, &[], 4, 10).is_empty());
    }
}
