//! Collection objectives — the paper's future-work direction §V-(3):
//! "the objective can be a collection of items, a category, a topic, etc."
//!
//! [`ObjectiveSet`] describes a set target (explicit items or a whole
//! genre); [`SetObjectiveRecommender`] adapts any single-objective
//! [`InfluenceRecommender`] by steering toward the *currently most
//! reachable* member of the set and declaring success when any member is
//! recommended.

use irs_data::{Dataset, GenreId, ItemId, UserId};
use irs_embed::ItemDistance;

use crate::{generate_influence_path, InfluenceRecommender};

/// A set-valued objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveSet {
    items: Vec<ItemId>,
}

impl ObjectiveSet {
    /// Explicit item set (deduplicated; must be non-empty).
    pub fn from_items(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        assert!(!items.is_empty(), "objective set must be non-empty");
        ObjectiveSet { items }
    }

    /// All items carrying `genre` in the dataset.
    pub fn from_genre(dataset: &Dataset, genre: GenreId) -> Self {
        let items: Vec<ItemId> =
            (0..dataset.num_items).filter(|&i| dataset.genres[i].contains(&genre)).collect();
        Self::from_items(items)
    }

    /// Member items.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Whether `item` satisfies the objective.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// The member closest (by `dist`) to any item of `context` — the
    /// "entry point" of the objective set from the user's current
    /// position.  Falls back to the first member for empty contexts.
    pub fn nearest_member<D: ItemDistance>(&self, context: &[ItemId], dist: &D) -> ItemId {
        let Some(&anchor) = context.last() else {
            return self.items[0];
        };
        self.items
            .iter()
            .copied()
            .min_by(|&a, &b| {
                dist.distance(anchor, a)
                    .partial_cmp(&dist.distance(anchor, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty objective set")
    }
}

/// Adapts a single-objective recommender to a set objective: each step
/// re-targets the member nearest to the evolving context.
pub struct SetObjectiveRecommender<'a, R: ?Sized, D> {
    inner: &'a R,
    objective: ObjectiveSet,
    distance: D,
}

impl<'a, R: InfluenceRecommender + ?Sized, D: ItemDistance> SetObjectiveRecommender<'a, R, D> {
    /// Wrap `inner` with a set objective and a distance for re-targeting.
    pub fn new(inner: &'a R, objective: ObjectiveSet, distance: D) -> Self {
        SetObjectiveRecommender { inner, objective, distance }
    }

    /// Generate a path that ends when any member of the set is reached.
    pub fn generate(
        &self,
        user: UserId,
        history: &[ItemId],
        max_len: usize,
    ) -> (Vec<ItemId>, bool) {
        let mut path: Vec<ItemId> = Vec::new();
        while path.len() < max_len {
            let mut context = history.to_vec();
            context.extend_from_slice(&path);
            let target = self.objective.nearest_member(&context, &self.distance);
            let Some(item) = self.inner.next_item(user, history, target, &path) else {
                break;
            };
            path.push(item);
            if self.objective.contains(item) {
                return (path, true);
            }
        }
        (path, false)
    }

    /// Single-member convenience: degrade to the plain Algorithm 1.
    pub fn generate_single(
        &self,
        user: UserId,
        history: &[ItemId],
        target: ItemId,
        max_len: usize,
    ) -> Vec<ItemId> {
        generate_influence_path(self.inner, user, history, target, max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct LineDist;
    impl ItemDistance for LineDist {
        fn distance(&self, a: ItemId, b: ItemId) -> f32 {
            (a as f32 - b as f32).abs()
        }
    }

    /// Walks one step toward the objective on the number line.
    struct Walker;
    impl InfluenceRecommender for Walker {
        fn name(&self) -> String {
            "walker".into()
        }
        fn next_item(
            &self,
            _user: UserId,
            history: &[ItemId],
            objective: ItemId,
            path: &[ItemId],
        ) -> Option<ItemId> {
            let cur = path.last().or_else(|| history.last()).copied()?;
            if cur < objective {
                Some(cur + 1)
            } else if cur > objective {
                Some(cur - 1)
            } else {
                Some(objective)
            }
        }
    }

    #[test]
    fn set_objective_reaches_nearest_member() {
        let set = ObjectiveSet::from_items(vec![3, 20]);
        let rec = SetObjectiveRecommender::new(&Walker, set, LineDist);
        // From 6, member 3 is nearer than 20.
        let (path, reached) = rec.generate(0, &[6], 10);
        assert!(reached);
        assert_eq!(path, vec![5, 4, 3]);
    }

    #[test]
    fn retargeting_follows_context_drift() {
        // Start at 18: member 20 is nearest; the path must go up, not down
        // to 3.
        let set = ObjectiveSet::from_items(vec![3, 20]);
        let rec = SetObjectiveRecommender::new(&Walker, set, LineDist);
        let (path, reached) = rec.generate(0, &[18], 10);
        assert!(reached);
        assert_eq!(*path.last().unwrap(), 20);
    }

    #[test]
    fn budget_limits_set_paths() {
        let set = ObjectiveSet::from_items(vec![50]);
        let rec = SetObjectiveRecommender::new(&Walker, set, LineDist);
        let (path, reached) = rec.generate(0, &[0], 5);
        assert!(!reached);
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn genre_objective_collects_genre_items() {
        let d = Dataset {
            name: "t".into(),
            num_users: 1,
            num_items: 4,
            sequences: vec![vec![0, 1, 2, 3]],
            genres: vec![vec![0], vec![1], vec![0, 1], vec![1]],
            genre_names: vec!["A".into(), "B".into()],
            item_names: vec![],
        };
        let set = ObjectiveSet::from_genre(&d, 1);
        assert_eq!(set.items(), &[1, 2, 3]);
        assert!(set.contains(2));
        assert!(!set.contains(0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_objective_set_is_rejected() {
        let _ = ObjectiveSet::from_items(vec![]);
    }
}
