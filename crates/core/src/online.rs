//! Incremental (online) training entry point.
//!
//! [`Irn::fit`] owns the full offline loop: epochs, shuffling, the LR
//! scheduler.  A *serving* process retraining from live feedback needs
//! something narrower — fold a small batch of fresh subsequences into an
//! already-trained model, cheaply and repeatedly, without restarting the
//! optimiser or re-touching the dataset.  [`IncrementalTrainer`] is that
//! entry point: it wraps a student [`Irn`] together with one persistent
//! [`Graph`] tape (recycled via `Graph::reset()`, the training-engine-v2
//! arena, so steady-state folds are allocation-free) and one [`Adam`]
//! state that survives across folds — optimizer moments keep
//! accumulating exactly as they would inside a longer `fit` run.
//!
//! The trainer is deliberately *not* the served model: callers train a
//! private student and publish parameter snapshots (via
//! [`IncrementalTrainer::snapshot_bytes`], the IRSP writer) to whatever
//! serves traffic — training can never corrupt in-flight scoring.
//!
//! `Graph` is not `Send` (its tape records non-`Send` backward
//! closures), so an `IncrementalTrainer` must be *constructed on* the
//! thread that folds; the [`Irn`] itself moves across threads freely.

use irs_data::split::SubSeq;
use irs_nn::Adam;
use irs_tensor::Graph;

use crate::irn::Irn;

/// Online fine-tuning state around a student [`Irn`] (see module docs).
pub struct IncrementalTrainer {
    model: Irn,
    graph: Graph,
    opt: Adam,
    step: u64,
    batch_size: usize,
}

impl IncrementalTrainer {
    /// Wrap `model` for incremental updates.  Learning rate and batch
    /// size come from the model's own `NeuralTrainConfig`; Adam moments
    /// start fresh (the offline run's moments are not serialised in
    /// IRSP).
    pub fn new(model: Irn) -> Self {
        let train = &model.config().train;
        let lr = train.lr;
        let batch_size = train.batch_size.max(1);
        IncrementalTrainer { model, graph: Graph::new(), opt: Adam::new(lr), step: 0, batch_size }
    }

    /// The student model (read-only; publish it with
    /// [`IncrementalTrainer::snapshot_bytes`]).
    pub fn model(&self) -> &Irn {
        &self.model
    }

    /// Optimiser steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Fold one pass over `seqs` into the student: minibatches of the
    /// configured size, each a full forward/backward/clipped-update step
    /// on the recycled tape.  Returns the mean minibatch loss (`NaN`
    /// when `seqs` is empty).  Subsequences shorter than 2 items carry
    /// no real shifted target and are skipped.
    pub fn fold(&mut self, seqs: &[SubSeq]) -> f32 {
        let usable: Vec<&SubSeq> = seqs.iter().filter(|s| s.items.len() >= 2).collect();
        if usable.is_empty() {
            return f32::NAN;
        }
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in usable.chunks(self.batch_size) {
            total += self.model.train_step(&self.graph, chunk, self.step, &mut self.opt);
            self.step += 1;
            batches += 1;
        }
        total / batches as f32
    }

    /// Serialise the student's current parameters (IRSP bytes, ready for
    /// `Irn::load` / a snapshot registry).
    pub fn snapshot_bytes(&self) -> std::io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        self.model.save(&mut bytes)?;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irn::IrnConfig;
    use irs_baselines::NeuralTrainConfig;

    fn tiny_config() -> IrnConfig {
        IrnConfig {
            dim: 8,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 8,
            train: NeuralTrainConfig { epochs: 1, batch_size: 4, ..Default::default() },
            ..Default::default()
        }
    }

    fn seqs(n: usize) -> Vec<SubSeq> {
        (0..n)
            .map(|s| SubSeq { user: s % 3, items: (0..5).map(|k| (s + k) % 8).collect() })
            .collect()
    }

    #[test]
    fn fold_trains_and_loss_falls_on_repeated_corpus() {
        let model = Irn::fit(&seqs(8), &[], 8, 3, &tiny_config(), None);
        let mut trainer = IncrementalTrainer::new(model);
        let corpus = seqs(8);
        let first = trainer.fold(&corpus);
        assert!(first.is_finite());
        let mut last = first;
        for _ in 0..12 {
            last = trainer.fold(&corpus);
        }
        assert!(last.is_finite());
        assert!(last < first, "repeated folds must reduce loss ({first} -> {last})");
        assert!(trainer.steps() >= 13 * 2, "4-sized minibatches over 8 seqs = 2 steps per fold");
    }

    #[test]
    fn fold_skips_degenerate_and_empty_input() {
        let model = Irn::fit(&seqs(8), &[], 8, 3, &tiny_config(), None);
        let mut trainer = IncrementalTrainer::new(model);
        assert!(trainer.fold(&[]).is_nan());
        let short = vec![SubSeq { user: 0, items: vec![3] }];
        assert!(trainer.fold(&short).is_nan(), "1-item seqs have no shifted target");
        assert_eq!(trainer.steps(), 0);
    }

    #[test]
    fn snapshot_bytes_round_trip_into_a_scoring_model() {
        let cfg = tiny_config();
        let model = Irn::fit(&seqs(8), &[], 8, 3, &cfg, None);
        let mut trainer = IncrementalTrainer::new(model);
        trainer.fold(&seqs(8));
        let bytes = trainer.snapshot_bytes().unwrap();
        let student = Irn::load(&bytes[..], 8, 3, &cfg).unwrap();
        // The loaded copy scores exactly like the student it was
        // serialised from.
        assert_eq!(
            student.score_next(0, &[1, 2], 5),
            trainer.model().score_next(0, &[1, 2], 5),
            "published snapshot must answer like the student"
        );
    }

    #[test]
    fn folding_changes_the_published_parameters() {
        let cfg = tiny_config();
        let model = Irn::fit(&seqs(8), &[], 8, 3, &cfg, None);
        let mut trainer = IncrementalTrainer::new(model);
        let before = trainer.snapshot_bytes().unwrap();
        trainer.fold(&seqs(8));
        let after = trainer.snapshot_bytes().unwrap();
        assert_ne!(before, after, "a fold must move the parameters");
    }
}
