//! The Influential Recommender Network (IRN), §III-D.
//!
//! Architecture (Fig. 4): item embedding (optionally initialised from
//! item2vec) + learned positional encoding → a stack of `L` decoder layers
//! whose self-attention uses the **Personalized Impressionability Mask**
//! (PIM) → linear projection to item logits.
//!
//! ## PIM (Fig. 5)
//!
//! Input sequences are pre-padded so the objective item occupies the fixed
//! final position `T−1`.  On top of the causal (lower-triangular) mask:
//!
//! * **Type 1** (`MaskType::Causal`): nothing — the objective column is
//!   invisible like any other future position (`w_h = w_t = 0`).
//! * **Type 2** (`MaskType::ObjectiveUniform`): column `T−1` is revealed to
//!   every query with a uniform additive weight `w_t`.
//! * **Type 3** (`MaskType::ObjectivePersonalized`): the additive weight is
//!   `w_t · r_u` with `r_u = W_U · e(u)` learned per user — gradients flow
//!   into the user embedding through the attention mask.
//!
//! ## Training objective (Eq. 8–9)
//!
//! Minimise the conditional perplexity of real subsequences whose last item
//! is the objective: standard shifted cross-entropy over the pre-padded
//! sequence, ignoring PAD targets.

use irs_data::split::{pad_to, PaddingScheme, SubSeq};
use irs_data::{pad_token, ItemId, UserId};
use irs_embed::ItemEmbeddings;
use irs_nn::{
    append_only_objective_mask, broadcast_then_add, causal_mask, causal_mask_with_objective,
    key_padding_mask, Adam, AppendKey, AttnBias, CacheState, Embedding, EncodingLayout, FwdCtx,
    InferBias, LayerKv, Linear, Optimizer, ParamStore, PositionalEncoding, ReduceLrOnPlateau,
    TransformerBlock,
};
use irs_tensor::{Graph, Tensor, Var};
use parking_lot::Mutex;
use rand::SeedableRng;

use crate::{InfluenceRecommender, NextQuery};
use irs_baselines::NeuralTrainConfig;

/// PIM variants (Table V ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskType {
    /// Type 1: plain causal mask; the objective is invisible.
    Causal,
    /// Type 2: objective column with uniform weight `w_t`.
    ObjectiveUniform,
    /// Type 3: objective column with personalized weight `w_t · r_u`.
    ObjectivePersonalized,
}

/// IRN hyperparameters (paper Table VI).
#[derive(Debug, Clone)]
pub struct IrnConfig {
    /// Item-embedding / model width `d`.
    pub dim: usize,
    /// User-embedding width `d'`.
    pub user_dim: usize,
    /// Decoder layers `L`.
    pub layers: usize,
    /// Attention heads `h`.
    pub heads: usize,
    /// Total input length `T = l_max + 1` (subsequence + objective slot is
    /// already part of the subsequence; `max_len` is the padded length).
    pub max_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Objective mask weight `w_t`.
    pub wt: f32,
    /// Mask variant.
    pub mask_type: MaskType,
    /// Padding scheme (§III-D5 argues for pre-padding; post-padding is the
    /// ablation).
    pub padding: PaddingScheme,
    /// Inference-time sequence layout.  [`EncodingLayout::PrePadded`] is
    /// the paper's right-aligned window; [`EncodingLayout::AppendOnly`]
    /// places context items at absolute positions `0..c` with the
    /// objective as a fixed appended query slot, which keeps encoded
    /// prefixes stable across serve steps and enables the per-session
    /// K/V cache ([`Irn::score_next_cached`]).  Training always uses the
    /// pre-padded layout; this only routes the scoring paths.
    pub layout: EncodingLayout,
    /// Shared training options.
    pub train: NeuralTrainConfig,
}

impl Default for IrnConfig {
    fn default() -> Self {
        IrnConfig {
            dim: 32,
            user_dim: 8,
            layers: 2,
            heads: 2,
            max_len: 24,
            dropout: 0.1,
            wt: 1.0,
            mask_type: MaskType::ObjectivePersonalized,
            padding: PaddingScheme::Pre,
            layout: EncodingLayout::default(),
            train: NeuralTrainConfig::default(),
        }
    }
}

/// A trained IRN.
pub struct Irn {
    store: ParamStore,
    emb: Embedding,
    pos: PositionalEncoding,
    blocks: Vec<TransformerBlock>,
    user_emb: Embedding,
    wu: Linear,
    out: Linear,
    config: IrnConfig,
    num_items: usize,
    num_users: usize,
    pim_cache: Mutex<PimCache>,
    epoch_losses: Vec<f32>,
}

/// Inference-time cache for the PIM attention bias, reused across decoding
/// steps (`score_next_batch` is called once per path step; neither part
/// below depends on the step's context):
///
/// * the shared `[T, T]` causal-plus-objective base mask — constant for a
///   given `w_t`/mask-type, rebuilt only when [`Irn::set_wt`] changes the
///   baked-in weight (the `wt` field is the invalidation key);
/// * the learned impressionability `r_u` per user — a pure function of the
///   trained weights, so valid for the model's lifetime.
///
/// Guarded by a `Mutex` (held only while assembling bias inputs, not during
/// the forward pass) so trained models stay `Sync` for parallel path
/// generation.
#[derive(Default)]
struct PimCache {
    wt: f32,
    base: Option<Tensor>,
    ru: Vec<Option<f32>>,
}

impl Irn {
    /// Train IRN on subsequences (each subsequence's last item is its
    /// objective).  `pretrained` seeds the item-embedding table from
    /// item2vec vectors when the dimensions match (§III-D1); `val` drives
    /// the reduce-on-plateau scheduler when non-empty.
    pub fn fit(
        train: &[SubSeq],
        val: &[SubSeq],
        num_items: usize,
        num_users: usize,
        config: &IrnConfig,
        pretrained: Option<&ItemEmbeddings>,
    ) -> Self {
        assert!(config.max_len >= 3, "max_len must allow context + objective");
        let vocab = num_items + 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();

        let emb = match pretrained {
            Some(p) if p.dim() == config.dim && p.num_items() == num_items => {
                // item2vec rows for real items; small random row for PAD.
                let mut table = Tensor::randn(&[vocab, config.dim], 0.01, &mut rng);
                let d = config.dim;
                table.data_mut()[..num_items * d].copy_from_slice(p.as_flat());
                Embedding::from_pretrained(&mut store, "irn.emb", table)
            }
            _ => Embedding::new(&mut store, "irn.emb", vocab, config.dim, &mut rng),
        };
        let pos = PositionalEncoding::new(&mut store, "irn", config.max_len, config.dim, &mut rng);
        let blocks: Vec<TransformerBlock> = (0..config.layers)
            .map(|l| {
                TransformerBlock::new(
                    &mut store,
                    &format!("irn.block{l}"),
                    config.dim,
                    config.heads,
                    config.dropout,
                    &mut rng,
                )
            })
            .collect();
        let user_emb =
            Embedding::new(&mut store, "irn.user", num_users.max(1), config.user_dim, &mut rng);
        let wu = Linear::new(&mut store, "irn.wu", config.user_dim, 1, true, &mut rng);
        let out = Linear::new(&mut store, "irn.out", config.dim, vocab, true, &mut rng);

        let mut model = Irn {
            store,
            emb,
            pos,
            blocks,
            user_emb,
            wu,
            out,
            config: config.clone(),
            num_items,
            num_users: num_users.max(1),
            pim_cache: Mutex::new(PimCache::default()),
            epoch_losses: Vec::new(),
        };

        let mut opt = Adam::new(config.train.lr);
        let mut sched = ReduceLrOnPlateau::new(1);
        let mut step = 0u64;
        // One tape for the whole run: every step re-records ops but
        // recycles the previous step's value/gradient buffers.
        let graph = Graph::new();
        for epoch in 0..config.train.epochs {
            use rand::seq::SliceRandom;
            let mut order: Vec<usize> = (0..train.len()).collect();
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for chunk in order.chunks(config.train.batch_size) {
                let batch: Vec<&SubSeq> = chunk.iter().map(|&i| &train[i]).collect();
                let loss = model.train_step(&graph, &batch, step, &mut opt);
                step += 1;
                epoch_loss += loss;
                n += 1;
            }
            let train_loss = epoch_loss / n.max(1) as f32;
            model.epoch_losses.push(train_loss);
            let monitored = if val.is_empty() { train_loss } else { model.dataset_loss(val) };
            sched.observe(monitored, &mut opt);
            if config.train.verbose {
                println!(
                    "IRN epoch {epoch}: train {train_loss:.4}, monitored {monitored:.4}, lr {:.2e}",
                    opt.lr()
                );
            }
        }
        model
    }

    /// Inference-time objective weight (the aggressiveness knob of Fig. 7
    /// can be swept without retraining, though the experiments retrain).
    pub fn set_wt(&mut self, wt: f32) {
        self.config.wt = wt;
    }

    /// Current objective mask weight.
    pub fn wt(&self) -> f32 {
        self.config.wt
    }

    /// Model configuration.
    pub fn config(&self) -> &IrnConfig {
        &self.config
    }

    /// Mean training loss per epoch, recorded during [`Irn::fit`] — pinned
    /// by the trajectory determinism tests.
    pub fn training_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    /// Number of real items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of users the model was trained for (at least 1).
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Serialise the trained parameters (IRSP format, see
    /// `irs_nn::ParamStore::save_parameters`).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.store.save_parameters(writer)
    }

    /// Reconstruct a model of the given architecture and load trained
    /// parameters into it.  The config, item count and user count must
    /// match the saved model exactly (checked by name/shape).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_items: usize,
        num_users: usize,
        config: &IrnConfig,
    ) -> std::io::Result<Self> {
        let mut arch_cfg = config.clone();
        arch_cfg.train.epochs = 0; // build architecture only
        let mut model = Irn::fit(&[], &[], num_items, num_users, &arch_cfg, None);
        model.config = config.clone();
        model.store.load_parameters(reader)?;
        Ok(model)
    }

    /// The learned personalized impressionability factor `r_u` (Fig. 8).
    pub fn ru(&self, user: UserId) -> f32 {
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &self.store, false, 0);
        let e = self.user_emb.lookup(&ctx, &[user % self.num_users]);
        self.wu.forward2d(&ctx, e).item()
    }

    /// `r_u` for every user.
    pub fn all_ru(&self) -> Vec<f32> {
        (0..self.num_users).map(|u| self.ru(u)).collect()
    }

    // ------------------------------------------------------------------
    // Forward passes
    // ------------------------------------------------------------------

    /// Assemble the PIM attention bias for a batch.
    fn build_bias<'g>(
        &self,
        ctx: &FwdCtx<'g, '_>,
        users: &[UserId],
        pad_lens: &[usize],
    ) -> AttnBias<'g> {
        let t = self.config.max_len;
        let keypad = key_padding_mask(t, pad_lens);
        match self.config.mask_type {
            MaskType::Causal => AttnBias::Base(broadcast_then_add(&causal_mask(t), &keypad)),
            MaskType::ObjectiveUniform => AttnBias::Base(broadcast_then_add(
                &causal_mask_with_objective(t, t - 1, self.config.wt),
                &keypad,
            )),
            MaskType::ObjectivePersonalized => {
                // Objective column visible (weight 0 in the base); the
                // learned part w_t·r_u is added differentiably.
                let base = broadcast_then_add(&causal_mask_with_objective(t, t - 1, 0.0), &keypad);
                let idx: Vec<UserId> = users.iter().map(|&u| u % self.num_users).collect();
                let e = self.user_emb.lookup(ctx, &idx);
                let ru = self.wu.forward2d(ctx, e).reshape(&[users.len()]);
                AttnBias::BaseWithScaledColumn {
                    base,
                    col: t - 1,
                    scale: ru,
                    weight: self.config.wt,
                }
            }
        }
    }

    /// Decoder forward: `[B][T]` tokens -> logits `[B, T, vocab]`.
    fn decode<'g>(
        &self,
        ctx: &FwdCtx<'g, '_>,
        users: &[UserId],
        inputs: &[Vec<ItemId>],
        pad_lens: &[usize],
    ) -> Var<'g> {
        let bias = self.build_bias(ctx, users, pad_lens);
        let mut h = self.pos.add_to(ctx, self.emb.lookup_seq(ctx, inputs));
        for block in &self.blocks {
            h = block.forward(ctx, h, &bias);
        }
        self.out.forward3d(ctx, h)
    }

    /// Pre-padded batch tensors for a set of subsequences.
    #[allow(clippy::type_complexity)]
    fn prepare_batch(
        &self,
        batch: &[&SubSeq],
    ) -> (Vec<UserId>, Vec<Vec<ItemId>>, Vec<ItemId>, Vec<usize>) {
        let pad = pad_token(self.num_items);
        let t = self.config.max_len;
        let mut users = Vec::with_capacity(batch.len());
        let mut inputs = Vec::with_capacity(batch.len());
        let mut targets = Vec::with_capacity(batch.len() * t);
        let mut pad_lens = Vec::with_capacity(batch.len());
        for s in batch {
            users.push(s.user);
            let padded = pad_to(&s.items, t, pad, self.config.padding);
            // Shifted targets: position p predicts token p+1; the final
            // position (the objective itself) has no successor.
            for p in 0..t {
                targets.push(if p + 1 < t { padded[p + 1] } else { pad });
            }
            pad_lens.push(padded.iter().take_while(|&&x| x == pad).count());
            inputs.push(padded);
        }
        (users, inputs, targets, pad_lens)
    }

    pub(crate) fn train_step(
        &mut self,
        g: &Graph,
        batch: &[&SubSeq],
        step: u64,
        opt: &mut Adam,
    ) -> f32 {
        let pad = pad_token(self.num_items);
        let (users, inputs, targets, pad_lens) = self.prepare_batch(batch);
        g.reset();
        let ctx = FwdCtx::new(g, &self.store, true, step);
        let logits = self.decode(&ctx, &users, &inputs, &pad_lens);
        let loss = logits.cross_entropy(&targets, pad);
        let loss_val = loss.item();
        self.store.zero_grad();
        ctx.backprop(loss);
        drop(ctx);
        opt.step_clipped(&mut self.store, self.config.train.clip);
        loss_val
    }

    /// Mean shifted cross-entropy over a dataset (validation loss; also the
    /// model perplexity of Eq. 8 in log form).
    pub fn dataset_loss(&self, seqs: &[SubSeq]) -> f32 {
        if seqs.is_empty() {
            return f32::NAN;
        }
        let pad = pad_token(self.num_items);
        let mut total = 0.0;
        let mut n = 0usize;
        let graph = Graph::new();
        for chunk in seqs.chunks(16) {
            let batch: Vec<&SubSeq> = chunk.iter().collect();
            let (users, inputs, targets, pad_lens) = self.prepare_batch(&batch);
            graph.reset();
            let ctx = FwdCtx::new(&graph, &self.store, false, 0);
            let logits = self.decode(&ctx, &users, &inputs, &pad_lens);
            total += logits.cross_entropy(&targets, pad).item();
            n += 1;
        }
        total / n as f32
    }

    /// Next-item logits given a context and the objective, routed on
    /// [`IrnConfig::layout`].  Pre-padded: the context is pre-padded to
    /// end at position `T−2` with the objective pinned at `T−1`; the
    /// returned scores are the logits at the last context position (PAD
    /// logit removed).  Append-only: context tokens at absolute
    /// positions `0..c` with the objective at the fixed appended query
    /// slot (the cold path [`Irn::score_next_cached`] is pinned to).
    pub fn score_next(&self, user: UserId, context: &[ItemId], objective: ItemId) -> Vec<f32> {
        if self.config.layout == EncodingLayout::AppendOnly {
            return self.score_next_append(user, context, objective);
        }
        let pad = pad_token(self.num_items);
        let t = self.config.max_len;
        // Keep the most recent T−1 tokens of context ⊕ objective.
        let mut seq: Vec<ItemId> = context.to_vec();
        seq.push(objective);
        let padded = pad_to(&seq, t, pad, self.config.padding);
        let pad_len = padded.iter().take_while(|&&x| x == pad).count();
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &self.store, false, 0);
        let logits = self.decode(&ctx, &[user], &[padded], &[pad_len]).select_step(t - 2).value();
        logits.data()[..self.num_items].to_vec()
    }

    /// Batched [`Irn::score_next`]: pads `N` contexts (each ⊕ its
    /// objective) into a single `[N, T]` forward pass under the PIM mask
    /// and returns next-item logits per row.
    ///
    /// Every row's computation is independent of its neighbours and the
    /// tensor kernels accumulate deterministically, so each returned row is
    /// bitwise identical to the scalar [`Irn::score_next`] — `score_next`
    /// stays the reference path, and a debug assertion spot-checks the
    /// first row against it on every batched call.
    pub fn score_next_batch(
        &self,
        users: &[UserId],
        contexts: &[&[ItemId]],
        objectives: &[ItemId],
    ) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), contexts.len(), "score_next_batch users/contexts mismatch");
        assert_eq!(users.len(), objectives.len(), "score_next_batch users/objectives mismatch");
        if users.is_empty() {
            return Vec::new();
        }
        if self.config.layout == EncodingLayout::AppendOnly {
            // Append-only rows have per-query lengths, so there is no
            // shared `[N, T]` rectangle to batch; score each row through
            // the scalar append path (itself the bitwise reference).
            return users
                .iter()
                .zip(contexts.iter().zip(objectives))
                .map(|(&u, (ctx_items, &obj))| self.score_next_append(u, ctx_items, obj))
                .collect();
        }
        let pad = pad_token(self.num_items);
        let t = self.config.max_len;
        let mut inputs = Vec::with_capacity(users.len());
        let mut pad_lens = Vec::with_capacity(users.len());
        for (ctx_items, &obj) in contexts.iter().zip(objectives) {
            let mut seq: Vec<ItemId> = ctx_items.to_vec();
            seq.push(obj);
            let padded = pad_to(&seq, t, pad, self.config.padding);
            pad_lens.push(padded.iter().take_while(|&&x| x == pad).count());
            inputs.push(padded);
        }
        let bias = self.cached_infer_bias(users, &pad_lens);
        let mut h = self.emb.infer_lookup_seq(&self.store, &inputs);
        self.pos.infer_add_in_place(&self.store, &mut h);
        // Only position T−2 (the last context slot) feeds the output
        // projection, so the final block runs its query/FFN for that row
        // alone and earlier blocks run in full — the graph path computes
        // every position because training needs every logit.
        let d = self.config.dim;
        let last = match self.blocks.split_last() {
            Some((final_block, earlier)) => {
                for block in earlier {
                    h = block.infer(&self.store, &h, &bias);
                }
                final_block.infer_last_query(&self.store, &h, &bias, t - 2)
            }
            None => {
                let mut rows = Vec::with_capacity(users.len() * d);
                for bi in 0..users.len() {
                    let off = bi * t * d + (t - 2) * d;
                    rows.extend_from_slice(&h.data()[off..off + d]);
                }
                Tensor::from_vec(rows, &[users.len(), d])
            }
        };
        let logits = self.out.infer(&self.store, &last);
        let vocab = self.num_items + 1;
        let rows: Vec<Vec<f32>> =
            logits.data().chunks(vocab).map(|row| row[..self.num_items].to_vec()).collect();
        debug_assert!(
            {
                let reference = self.score_next(users[0], contexts[0], objectives[0]);
                rows[0].iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits())
            },
            "batched scores diverged from the scalar reference path"
        );
        rows
    }

    /// Inference-only PIM bias assembled from [`PimCache`]: the shared base
    /// mask and the per-user `r_u` scalars are fetched (or computed once)
    /// under the cache lock; the lock is released before the forward pass.
    ///
    /// Produces the same bias values as the differentiable
    /// [`Irn::build_bias`]: `r_u` is evaluated through the identical
    /// lookup + linear kernels, only detached from the tape.
    fn cached_infer_bias(&self, users: &[UserId], pad_lens: &[usize]) -> InferBias {
        let t = self.config.max_len;
        let keypad = key_padding_mask(t, pad_lens);
        let mut cache = self.pim_cache.lock();
        if cache.base.is_some() && cache.wt != self.config.wt {
            cache.base = None; // w_t is baked into the Type-2 base mask
        }
        if cache.base.is_none() {
            cache.wt = self.config.wt;
            cache.base = Some(match self.config.mask_type {
                MaskType::Causal => causal_mask(t),
                MaskType::ObjectiveUniform => causal_mask_with_objective(t, t - 1, self.config.wt),
                MaskType::ObjectivePersonalized => causal_mask_with_objective(t, t - 1, 0.0),
            });
        }
        let base = broadcast_then_add(cache.base.as_ref().expect("base mask built"), &keypad);
        let scaled_column = match self.config.mask_type {
            MaskType::Causal | MaskType::ObjectiveUniform => None,
            MaskType::ObjectivePersonalized => {
                if cache.ru.is_empty() {
                    cache.ru = vec![None; self.num_users];
                }
                let ru_vals: Vec<f32> = users
                    .iter()
                    .map(|&u| {
                        let idx = u % self.num_users;
                        *cache.ru[idx].get_or_insert_with(|| self.ru(idx))
                    })
                    .collect();
                Some((t - 1, ru_vals, self.config.wt))
            }
        };
        InferBias { base, scaled_column }
    }

    // ------------------------------------------------------------------
    // Append-only layout: cold path + per-session incremental cache
    // ------------------------------------------------------------------

    /// The append-only context window: the most recent `T − 1` context
    /// items (one slot stays reserved for the objective).  An empty
    /// context is substituted with a single PAD token so there is always
    /// a last context row to read logits from — the one place this
    /// layout is not comparable to the pre-padded one, which reads a PAD
    /// row out of a fully padded window instead.
    fn append_window(&self, context: &[ItemId]) -> Vec<ItemId> {
        let w = self.config.max_len - 1;
        let start = context.len().saturating_sub(w);
        if context[start..].is_empty() {
            vec![pad_token(self.num_items)]
        } else {
            context[start..].to_vec()
        }
    }

    /// `r_u` through the [`PimCache`] memo — the same values as
    /// [`Irn::ru`], computed at most once per user for the model's
    /// lifetime.
    fn cached_ru(&self, user: UserId) -> f32 {
        let idx = user % self.num_users;
        let mut cache = self.pim_cache.lock();
        if cache.ru.is_empty() {
            cache.ru = vec![None; self.num_users];
        }
        *cache.ru[idx].get_or_insert_with(|| self.ru(idx))
    }

    /// PIM bias for an `n`-row append-only window (`n − 1` context rows
    /// plus the objective row at index `n − 1`).  Every row is a real
    /// token, so there is no key-padding term; the mask is the shared
    /// 2-D [`append_only_objective_mask`] with the per-type objective
    /// column weight.
    fn append_infer_bias(&self, user: UserId, n: usize) -> InferBias {
        let base = match self.config.mask_type {
            MaskType::Causal => append_only_objective_mask(n, -1e9),
            MaskType::ObjectiveUniform => append_only_objective_mask(n, self.config.wt),
            MaskType::ObjectivePersonalized => append_only_objective_mask(n, 0.0),
        };
        let scaled_column = match self.config.mask_type {
            MaskType::Causal | MaskType::ObjectiveUniform => None,
            MaskType::ObjectivePersonalized => {
                Some((n - 1, vec![self.cached_ru(user)], self.config.wt))
            }
        };
        InferBias { base, scaled_column }
    }

    /// Cold full re-encode in the append-only layout: context tokens at
    /// absolute positions `0..c`, the objective embedded at the fixed
    /// positional slot `max_len − 1`, logits read at the last context
    /// row.
    ///
    /// At `L = 1` with a full window this is bitwise identical to the
    /// pre-padded [`Irn::score_next`]: positions and every visible-key
    /// bias entry coincide, and the only differing mask rows belong to
    /// the objective query, whose output nothing reads at one layer.
    /// With shorter contexts the absolute positions differ from the
    /// right-aligned window, so the layout is a model configuration, not
    /// a transparent optimisation of the pre-padded scores.
    fn score_next_append(&self, user: UserId, context: &[ItemId], objective: ItemId) -> Vec<f32> {
        let mut rows = self.append_window(context);
        let c = rows.len();
        let n = c + 1;
        let d = self.config.dim;
        rows.push(objective);
        let mut h = self.emb.infer_lookup(&self.store, &rows);
        for (i, row) in h.data_mut().chunks_mut(d).enumerate() {
            let pos = if i == c { self.config.max_len - 1 } else { i };
            self.pos.infer_add_row_in_place(&self.store, row, pos);
        }
        h.reshape_in_place(&[1, n, d]);
        let bias = self.append_infer_bias(user, n);
        let last = match self.blocks.split_last() {
            Some((final_block, earlier)) => {
                for block in earlier {
                    h = block.infer(&self.store, &h, &bias);
                }
                final_block.infer_last_query(&self.store, &h, &bias, c - 1)
            }
            None => {
                let off = (c - 1) * d;
                Tensor::from_vec(h.data()[off..off + d].to_vec(), &[1, d])
            }
        };
        let logits = self.out.infer(&self.store, &last);
        logits.data()[..self.num_items].to_vec()
    }

    /// A fresh (unprimed) incremental per-session cache for this model.
    /// Requires [`EncodingLayout::AppendOnly`] to be useful; the trait
    /// route ([`InfluenceRecommender::new_context_cache`]) only hands
    /// these out in that layout.
    pub fn new_append_cache(&self) -> IrnCacheState {
        IrnCacheState {
            user: 0,
            objective: 0,
            wt: 0.0,
            ru_scaled: None,
            tokens: Vec::new(),
            layers: (0..self.config.layers)
                .map(|_| IrnLayerState {
                    ctx: LayerKv::new(self.config.dim),
                    obj_k: Vec::new(),
                    obj_v: Vec::new(),
                })
                .collect(),
            last_out: Vec::new(),
            primed: false,
        }
    }

    /// One embedded-and-positioned input row (`[D]`): the same embedding
    /// row copy and positional add the cold path applies per row.
    fn append_input_row(&self, token: ItemId, pos: usize) -> Vec<f32> {
        let e = self.emb.infer_lookup(&self.store, &[token]);
        let mut x = e.data().to_vec();
        self.pos.infer_add_row_in_place(&self.store, &mut x, pos);
        x
    }

    /// Rebuild `cache` for `(user, objective, w_t)`: drop the context
    /// rows and run the objective ladder.  The objective row attends
    /// only to itself under [`append_only_objective_mask`], so its
    /// per-layer key/value rows are independent of the context and are
    /// computed once here per session.
    fn cache_prime(&self, cache: &mut IrnCacheState, user: UserId, objective: ItemId) {
        cache.user = user;
        cache.objective = objective;
        cache.wt = self.config.wt;
        cache.ru_scaled = match self.config.mask_type {
            MaskType::Causal | MaskType::ObjectiveUniform => None,
            // Same multiply order as `add_bias_in_place`: w_t · r_u.
            MaskType::ObjectivePersonalized => Some(self.config.wt * self.cached_ru(user)),
        };
        cache.tokens.clear();
        cache.last_out.clear();
        let mut x = self.append_input_row(objective, self.config.max_len - 1);
        for (block, layer) in self.blocks.iter().zip(&mut cache.layers) {
            layer.ctx.clear();
            // Empty context: the objective row's only visible key is its
            // own, with the 0.0 self-bias the cold mask pins.
            let r = block.infer_append_row(&self.store, &x, &layer.ctx, 0.0, cache.ru_scaled, None);
            layer.obj_k = r.k;
            layer.obj_v = r.v;
            x = r.out.data().to_vec();
        }
        cache.primed = true;
    }

    /// Encode one more context token into `cache` (at position
    /// `cache.tokens.len()`), appending its K/V rows at every layer.
    fn cache_step_token(&self, cache: &mut IrnCacheState, token: ItemId) {
        let obj_base = match self.config.mask_type {
            MaskType::Causal => -1e9,
            MaskType::ObjectiveUniform => self.config.wt,
            MaskType::ObjectivePersonalized => 0.0,
        };
        let mut x = self.append_input_row(token, cache.tokens.len());
        for (block, layer) in self.blocks.iter().zip(&mut cache.layers) {
            let objective = AppendKey {
                k: &layer.obj_k,
                v: &layer.obj_v,
                base: obj_base,
                scaled: cache.ru_scaled,
            };
            let r = block.infer_append_row(&self.store, &x, &layer.ctx, 0.0, None, Some(objective));
            layer.ctx.push(&r.k, &r.v);
            x = r.out.data().to_vec();
        }
        cache.tokens.push(token);
        cache.last_out = x;
    }

    /// Next-item logits through a per-session incremental cache
    /// ([`EncodingLayout::AppendOnly`] only).  Returns the scores plus
    /// whether the cached prefix was reused (`true`) or rebuilt.
    ///
    /// A hit requires the cache to be primed for the same
    /// `(user, objective, w_t)` and the stored tokens to be a prefix of
    /// the current window; then only the new suffix is encoded —
    /// `O(context)` work per serve step instead of `O(context²)`.  Once
    /// a session outgrows `max_len − 1` items the window slides and the
    /// stored prefix stops matching, so steps degrade to a bounded full
    /// replay of the window.
    ///
    /// Bitwise identical to the cold [`Irn::score_next`] in this layout:
    /// every float accumulates in the same order over the same visible
    /// keys (masked keys contribute an exact `0.0` in both paths) — see
    /// `irs_nn::MultiHeadAttention::infer_append_row` and the
    /// `incremental_cache` property tests.
    pub fn score_next_cached(
        &self,
        user: UserId,
        context: &[ItemId],
        objective: ItemId,
        cache: &mut IrnCacheState,
    ) -> (Vec<f32>, bool) {
        assert_eq!(
            self.config.layout,
            EncodingLayout::AppendOnly,
            "incremental scoring requires the append-only layout"
        );
        let toks = self.append_window(context);
        let hit = cache.primed
            && cache.user == user
            && cache.objective == objective
            && cache.wt.to_bits() == self.config.wt.to_bits()
            && toks.len() >= cache.tokens.len()
            && toks[..cache.tokens.len()] == cache.tokens[..];
        if !hit {
            self.cache_prime(cache, user, objective);
        }
        let start = cache.tokens.len();
        for &tok in &toks[start..] {
            self.cache_step_token(cache, tok);
        }
        let last = Tensor::from_vec(cache.last_out.clone(), &[1, self.config.dim]);
        let logits = self.out.infer(&self.store, &last);
        (logits.data()[..self.num_items].to_vec(), hit)
    }
}

/// Per-layer slice of [`IrnCacheState`]: the append-only context K/V
/// rows plus the objective slot's fixed key/value rows for that layer.
#[derive(Debug, Clone, Default)]
struct IrnLayerState {
    ctx: LayerKv,
    obj_k: Vec<f32>,
    obj_v: Vec<f32>,
}

/// Incremental per-session state of an [`EncodingLayout::AppendOnly`]
/// IRN: one encoded context prefix (per-layer K/V rows plus the
/// objective ladder) keyed by the `(user, objective, w_t)` it was built
/// under.  Obtained from [`Irn::new_append_cache`] (or type-erased via
/// [`InfluenceRecommender::new_context_cache`]) and advanced by
/// [`Irn::score_next_cached`].
pub struct IrnCacheState {
    user: UserId,
    objective: ItemId,
    wt: f32,
    ru_scaled: Option<f32>,
    tokens: Vec<ItemId>,
    layers: Vec<IrnLayerState>,
    last_out: Vec<f32>,
    primed: bool,
}

impl CacheState for IrnCacheState {
    fn resident_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        let mut total =
            self.tokens.capacity() * std::mem::size_of::<ItemId>() + self.last_out.capacity() * f;
        for layer in &self.layers {
            total += layer.ctx.bytes() + (layer.obj_k.capacity() + layer.obj_v.capacity()) * f;
        }
        total
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl InfluenceRecommender for Irn {
    fn name(&self) -> String {
        "IRN".into()
    }

    fn next_item(
        &self,
        user: UserId,
        history: &[ItemId],
        objective: ItemId,
        path: &[ItemId],
    ) -> Option<ItemId> {
        let mut context = history.to_vec();
        context.extend_from_slice(path);
        let scores = self.score_next(user, &context, objective);
        crate::masked_argmax(
            &scores,
            history.iter().chain(path.iter()).copied().filter(|&i| i != objective),
        )
    }

    /// All queries share one `[N, T]` forward through
    /// [`Irn::score_next_batch`] instead of `N` scalar passes.
    fn next_items_into(&self, queries: &[NextQuery<'_>], out: &mut Vec<Option<ItemId>>) {
        if queries.is_empty() {
            return;
        }
        let (contexts, users) = crate::batched_query_parts(queries);
        let ctx_refs: Vec<&[ItemId]> = contexts.iter().map(Vec::as_slice).collect();
        let objectives: Vec<ItemId> = queries.iter().map(|q| q.objective).collect();
        let scores = self.score_next_batch(&users, &ctx_refs, &objectives);
        out.extend(queries.iter().zip(&scores).map(|(q, s)| {
            crate::masked_argmax(
                s,
                q.history.iter().chain(q.path.iter()).copied().filter(|&i| i != q.objective),
            )
        }));
    }

    fn new_context_cache(&self) -> Option<Box<dyn CacheState>> {
        match self.config.layout {
            EncodingLayout::PrePadded => None,
            EncodingLayout::AppendOnly => Some(Box::new(self.new_append_cache())),
        }
    }

    fn next_item_cached(
        &self,
        query: &NextQuery<'_>,
        cache: &mut dyn CacheState,
    ) -> (Option<ItemId>, bool) {
        let Some(state) = cache.as_any_mut().downcast_mut::<IrnCacheState>() else {
            return (self.next_item(query.user, query.history, query.objective, query.path), false);
        };
        let mut context = query.history.to_vec();
        context.extend_from_slice(query.path);
        let (scores, hit) = self.score_next_cached(query.user, &context, query.objective, state);
        let answer = crate::masked_argmax(
            &scores,
            query
                .history
                .iter()
                .chain(query.path.iter())
                .copied()
                .filter(|&i| i != query.objective),
        );
        (answer, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Genre-block world: items 0..4 are genre A, 5..9 genre B, with
    /// bridge transitions 4↔5.  Objectives pull sessions toward their
    /// genre.
    fn block_seqs(n: usize) -> Vec<SubSeq> {
        let mut seqs = Vec::new();
        for s in 0..n {
            let (base, off) = if s % 2 == 0 { (0, s) } else { (5, s) };
            let items: Vec<ItemId> = (0..8).map(|k| base + (off + k) % 5).collect();
            seqs.push(SubSeq { user: s % 6, items });
        }
        // A few cross-genre bridge sequences ending in genre B.
        for s in 0..n / 2 {
            let items: Vec<ItemId> =
                vec![s % 5, (s + 1) % 5, 4, 5, 5 + (s + 1) % 5, 5 + (s + 2) % 5];
            seqs.push(SubSeq { user: s % 6, items });
        }
        seqs
    }

    fn quick_config() -> IrnConfig {
        IrnConfig {
            dim: 16,
            user_dim: 4,
            layers: 1,
            heads: 2,
            max_len: 10,
            dropout: 0.0,
            wt: 1.0,
            mask_type: MaskType::ObjectivePersonalized,
            padding: PaddingScheme::Pre,
            layout: EncodingLayout::PrePadded,
            train: NeuralTrainConfig { epochs: 6, lr: 3e-3, ..Default::default() },
        }
    }

    /// A fast-to-train append-only model for the cache tests.
    fn append_config() -> IrnConfig {
        IrnConfig {
            layout: EncodingLayout::AppendOnly,
            train: NeuralTrainConfig { epochs: 2, lr: 3e-3, ..Default::default() },
            ..quick_config()
        }
    }

    #[test]
    fn trains_and_loss_decreases() {
        let seqs = block_seqs(24);
        let cfg = quick_config();
        // Loss of an untrained (0-epoch) model vs trained model.
        let untrained = Irn::fit(
            &seqs,
            &[],
            10,
            6,
            &IrnConfig {
                train: NeuralTrainConfig { epochs: 0, ..cfg.train.clone() },
                ..cfg.clone()
            },
            None,
        );
        let trained = Irn::fit(&seqs, &[], 10, 6, &cfg, None);
        let lu = untrained.dataset_loss(&seqs);
        let lt = trained.dataset_loss(&seqs);
        assert!(lt < lu * 0.8, "training must reduce loss: {lu} -> {lt}");
    }

    #[test]
    fn score_next_has_item_length_and_is_finite() {
        let seqs = block_seqs(12);
        let model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        let s = model.score_next(0, &[0, 1, 2], 7);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn next_item_never_repeats_context() {
        let seqs = block_seqs(12);
        let model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        let path = crate::generate_influence_path(&model, 0, &[0, 1], 9, 6);
        let mut seen = vec![0, 1];
        for &i in &path {
            assert!(!seen.contains(&i) || i == 9, "item {i} repeated");
            seen.push(i);
        }
    }

    #[test]
    fn score_next_batch_matches_scalar_within_tolerance() {
        let seqs = block_seqs(24);
        let model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        let contexts: Vec<Vec<ItemId>> =
            vec![vec![0, 1, 2], vec![5, 6], vec![], vec![3, 4, 0, 1, 2, 3, 4, 0, 1, 2, 3]];
        let users = [0usize, 3, 5, 1];
        let objectives = [7usize, 2, 9, 8];
        let ctx_refs: Vec<&[ItemId]> = contexts.iter().map(Vec::as_slice).collect();
        // Twice: the second call runs fully from the PIM cache.
        for round in 0..2 {
            let batched = model.score_next_batch(&users, &ctx_refs, &objectives);
            assert_eq!(batched.len(), 4);
            for ((&u, (ctx, &obj)), row) in
                users.iter().zip(contexts.iter().zip(&objectives)).zip(&batched)
            {
                let scalar = model.score_next(u, ctx, obj);
                assert_eq!(row.len(), scalar.len());
                for (a, b) in row.iter().zip(&scalar) {
                    assert!(
                        (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                        "round {round}: batched {a} vs scalar {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_items_matches_next_item() {
        let seqs = block_seqs(24);
        let model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        let histories: Vec<Vec<ItemId>> = vec![vec![0, 1], vec![5, 6, 7], vec![2]];
        let paths: Vec<Vec<ItemId>> = vec![vec![2], vec![], vec![3, 4]];
        let queries: Vec<NextQuery<'_>> = histories
            .iter()
            .zip(&paths)
            .enumerate()
            .map(|(u, (h, p))| NextQuery { user: u, history: h, objective: 9, path: p })
            .collect();
        let batched = model.next_items(&queries);
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(*b, model.next_item(q.user, q.history, q.objective, q.path));
        }
    }

    #[test]
    fn set_wt_invalidates_the_cached_base_mask() {
        // Type-2 masks bake w_t into the cached base; changing w_t must
        // change batched scores just like it changes scalar scores.
        let seqs = block_seqs(12);
        let cfg = IrnConfig { mask_type: MaskType::ObjectiveUniform, ..quick_config() };
        let mut model = Irn::fit(&seqs, &[], 10, 6, &cfg, None);
        let ctx: Vec<ItemId> = vec![0, 1, 2];
        let before = model.score_next_batch(&[0], &[&ctx], &[8]);
        model.set_wt(3.0);
        let after = model.score_next_batch(&[0], &[&ctx], &[8]);
        let scalar_after = model.score_next(0, &ctx, 8);
        for (a, b) in after[0].iter().zip(&scalar_after) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }
        let diff: f32 = before[0].iter().zip(&after[0]).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "w_t change must reach the cached mask (diff {diff})");
    }

    #[test]
    fn ru_is_finite_and_user_specific() {
        let seqs = block_seqs(24);
        let model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        let rus = model.all_ru();
        assert_eq!(rus.len(), 6);
        assert!(rus.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn objective_changes_the_recommendation_distribution() {
        // With the PIM, swapping the objective must change the scores
        // (Type 1 causal masking would not see it at all).
        let seqs = block_seqs(24);
        let model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        let s_a = model.score_next(0, &[0, 1, 2], 8);
        let s_b = model.score_next(0, &[0, 1, 2], 3);
        let diff: f32 = s_a.iter().zip(&s_b).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "objective must influence the distribution (diff {diff})");
    }

    #[test]
    fn causal_mask_type_ignores_objective_content() {
        // Type 1: objective token is masked everywhere except its own
        // query row, and predictions are read at T−2, so two different
        // objectives must give identical scores.
        let seqs = block_seqs(12);
        let cfg = IrnConfig { mask_type: MaskType::Causal, ..quick_config() };
        let model = Irn::fit(&seqs, &[], 10, 6, &cfg, None);
        let s_a = model.score_next(0, &[0, 1, 2], 8);
        let s_b = model.score_next(0, &[0, 1, 2], 3);
        for (a, b) in s_a.iter().zip(&s_b) {
            assert!((a - b).abs() < 1e-5, "causal IRN must not see the objective");
        }
    }

    #[test]
    fn save_load_round_trips_scores() {
        let seqs = block_seqs(12);
        let cfg = quick_config();
        let model = Irn::fit(&seqs, &[], 10, 6, &cfg, None);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        let restored = Irn::load(&bytes[..], 10, 6, &cfg).unwrap();
        assert_eq!(
            model.score_next(2, &[0, 1, 2], 7),
            restored.score_next(2, &[0, 1, 2], 7),
            "restored model must score identically"
        );
        assert_eq!(model.ru(3), restored.ru(3));
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let seqs = block_seqs(12);
        let cfg = quick_config();
        let model = Irn::fit(&seqs, &[], 10, 6, &cfg, None);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        let wrong = IrnConfig { dim: 8, ..cfg };
        assert!(Irn::load(&bytes[..], 10, 6, &wrong).is_err());
    }

    #[test]
    fn append_layout_matches_pre_padded_at_full_window() {
        // L = 1 and a full window: context positions and every
        // visible-key bias entry coincide between the two layouts, so
        // the scores must be bitwise equal.
        let seqs = block_seqs(12);
        let mut model = Irn::fit(&seqs, &[], 10, 6, &quick_config(), None);
        assert!(model.new_context_cache().is_none(), "pre-padded layout has no cache");
        let ctx: Vec<ItemId> = (0..9).map(|i| i % 10).collect(); // T − 1 = 9 items
        let pre = model.score_next(1, &ctx, 7);
        model.config.layout = EncodingLayout::AppendOnly;
        assert!(model.new_context_cache().is_some(), "append-only layout has a cache");
        let app = model.score_next(1, &ctx, 7);
        for (a, b) in app.iter().zip(&pre) {
            assert_eq!(a.to_bits(), b.to_bits(), "append {a} vs pre-padded {b}");
        }
    }

    #[test]
    fn cached_scores_match_cold_append_bitwise() {
        let seqs = block_seqs(12);
        let model = Irn::fit(&seqs, &[], 10, 6, &append_config(), None);
        let mut cache = model.new_append_cache();
        let session: Vec<ItemId> = vec![0, 3, 1, 4, 2, 5, 9, 6];
        for step in 0..=session.len() {
            let ctx = &session[..step];
            let (scores, hit) = model.score_next_cached(2, ctx, 8, &mut cache);
            // Step 0 primes an empty cache; step 1 replaces the PAD
            // placeholder window; from step 2 on the prefix extends.
            assert_eq!(hit, step >= 2, "unexpected hit flag at step {step}");
            let cold = model.score_next(2, ctx, 8);
            for (a, b) in scores.iter().zip(&cold) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}: cached {a} vs cold {b}");
            }
        }
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn cache_rebuilds_on_prefix_or_objective_change() {
        let seqs = block_seqs(12);
        let model = Irn::fit(&seqs, &[], 10, 6, &append_config(), None);
        let mut cache = model.new_append_cache();
        let (_, hit) = model.score_next_cached(2, &[0, 1, 2], 8, &mut cache);
        assert!(!hit, "fresh cache cannot hit");
        let (_, hit) = model.score_next_cached(2, &[0, 1, 2], 8, &mut cache);
        assert!(hit, "identical re-query must hit");
        // A mutated mid-prefix, a different user and a different
        // objective must each rebuild — and still score exactly cold.
        for (user, ctx, obj) in
            [(2, vec![0, 7, 2], 8), (4, vec![0, 7, 2], 8), (4, vec![0, 7, 2], 9)]
        {
            let (scores, hit) = model.score_next_cached(user, &ctx, obj, &mut cache);
            assert!(!hit, "changed query must rebuild");
            let cold = model.score_next(user, &ctx, obj);
            for (a, b) in scores.iter().zip(&cold) {
                assert_eq!(a.to_bits(), b.to_bits(), "cached {a} vs cold {b}");
            }
        }
    }

    #[test]
    fn next_item_cached_matches_next_item() {
        let seqs = block_seqs(12);
        let model = Irn::fit(&seqs, &[], 10, 6, &append_config(), None);
        let mut cache = model.new_context_cache().expect("append layout has a cache");
        let mut path: Vec<ItemId> = Vec::new();
        for step in 0..4 {
            let q = NextQuery { user: 1, history: &[0, 5], objective: 9, path: &path };
            let (answer, hit) = model.next_item_cached(&q, cache.as_mut());
            assert_eq!(answer, model.next_item(1, &[0, 5], 9, &path), "step {step}");
            assert_eq!(hit, step > 0, "unexpected hit flag at step {step}");
            match answer {
                Some(item) => path.push(item),
                None => break,
            }
        }
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn pretrained_embeddings_are_loaded() {
        use irs_embed::{train_item2vec, Item2VecConfig};
        let seqs = block_seqs(12);
        let raw: Vec<Vec<ItemId>> = seqs.iter().map(|s| s.items.clone()).collect();
        let emb =
            train_item2vec(&raw, 10, &Item2VecConfig { dim: 16, epochs: 1, ..Default::default() });
        let cfg = IrnConfig {
            train: NeuralTrainConfig { epochs: 0, ..Default::default() },
            ..quick_config()
        };
        let model = Irn::fit(&seqs, &[], 10, 6, &cfg, Some(&emb));
        // With 0 training epochs the embedding table must equal item2vec.
        let s = model.store.value(model.emb.table_id());
        assert_eq!(&s.data()[..10 * 16], emb.as_flat());
    }
}
