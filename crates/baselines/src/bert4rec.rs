//! Bert4Rec — bidirectional self-attention with cloze training
//! (Sun et al., 2019).  The paper selects Bert4Rec as the IRS evaluator
//! because it achieves the best HR@20/MRR of all candidates (Table II).

use irs_data::split::{pad_to, PaddingScheme, SubSeq};
use irs_data::{pad_token, ItemId, UserId};
use irs_nn::{
    key_padding_mask, Adam, AttnBias, Embedding, FwdCtx, InferBias, Linear, Optimizer, ParamStore,
    PositionalEncoding, TransformerBlock,
};
use irs_tensor::Graph;
use rand::{Rng, SeedableRng};

use crate::{NeuralTrainConfig, SequentialScorer};

/// Bert4Rec hyperparameters.
#[derive(Debug, Clone)]
pub struct Bert4RecConfig {
    /// Model width.
    pub dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Cloze masking probability.
    pub mask_prob: f32,
    /// Shared training options.
    pub train: NeuralTrainConfig,
}

impl Default for Bert4RecConfig {
    fn default() -> Self {
        Bert4RecConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            max_len: 24,
            dropout: 0.1,
            mask_prob: 0.3,
            train: NeuralTrainConfig::default(),
        }
    }
}

/// A trained Bert4Rec model.
///
/// Vocabulary layout: `0..num_items` are real items, `num_items` is PAD,
/// `num_items + 1` is the `[MASK]` token.
pub struct Bert4Rec {
    store: ParamStore,
    emb: Embedding,
    pos: PositionalEncoding,
    blocks: Vec<TransformerBlock>,
    out: Linear,
    num_items: usize,
    max_len: usize,
    epoch_losses: Vec<f32>,
}

impl Bert4Rec {
    /// The `[MASK]` token id.
    fn mask_token(&self) -> ItemId {
        self.num_items + 1
    }

    /// Train with the cloze objective.
    pub fn fit(seqs: &[SubSeq], num_items: usize, config: &Bert4RecConfig) -> Self {
        let pad = pad_token(num_items);
        let mask_tok = num_items + 1;
        let vocab = num_items + 2;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "bert4rec.emb", vocab, config.dim, &mut rng);
        let pos =
            PositionalEncoding::new(&mut store, "bert4rec", config.max_len, config.dim, &mut rng);
        let blocks: Vec<TransformerBlock> = (0..config.layers)
            .map(|l| {
                TransformerBlock::new(
                    &mut store,
                    &format!("bert4rec.block{l}"),
                    config.dim,
                    config.heads,
                    config.dropout,
                    &mut rng,
                )
            })
            .collect();
        let out = Linear::new(&mut store, "bert4rec.out", config.dim, vocab, true, &mut rng);
        let mut model = Bert4Rec {
            store,
            emb,
            pos,
            blocks,
            out,
            num_items,
            max_len: config.max_len,
            epoch_losses: Vec::new(),
        };

        let mut opt = Adam::new(config.train.lr);
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        let mut step = 0u64;
        // One tape for the whole run, reset per minibatch (buffer reuse).
        let graph = Graph::new();
        for epoch in 0..config.train.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for chunk in order.chunks(config.train.batch_size) {
                let (inputs, targets, pad_lens) =
                    model.make_cloze_batch(seqs, chunk, pad, mask_tok, config.mask_prob, &mut rng);
                let loss_val = model.train_step(
                    &graph,
                    &inputs,
                    &targets,
                    &pad_lens,
                    pad,
                    step,
                    &mut opt,
                    config.train.clip,
                );
                step += 1;
                epoch_loss += loss_val;
                n += 1;
            }
            let mean_loss = epoch_loss / n.max(1) as f32;
            model.epoch_losses.push(mean_loss);
            if config.train.verbose {
                println!("Bert4Rec epoch {epoch}: loss {mean_loss:.4}");
            }
        }
        model
    }

    /// Mean training loss per epoch, recorded during [`Bert4Rec::fit`] —
    /// pinned by the trajectory determinism tests.
    pub fn training_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    /// Build one cloze batch: randomly mask non-pad positions; in half the
    /// examples additionally mask the final position (aligning training
    /// with the append-`[MASK]`-and-predict evaluation).
    #[allow(clippy::type_complexity)]
    fn make_cloze_batch<R: Rng + ?Sized>(
        &self,
        seqs: &[SubSeq],
        chunk: &[usize],
        pad: ItemId,
        mask_tok: ItemId,
        mask_prob: f32,
        rng: &mut R,
    ) -> (Vec<Vec<ItemId>>, Vec<ItemId>, Vec<usize>) {
        let t = self.max_len;
        let mut inputs = Vec::with_capacity(chunk.len());
        let mut targets = Vec::with_capacity(chunk.len() * t);
        let mut pad_lens = Vec::with_capacity(chunk.len());
        for &si in chunk {
            let padded = pad_to(&seqs[si].items, t, pad, PaddingScheme::Pre);
            let pad_len = padded.iter().take_while(|&&x| x == pad).count();
            pad_lens.push(pad_len);
            let mut input = padded.clone();
            let mut tgt = vec![pad; t];
            let mut masked_any = false;
            for p in pad_len..t {
                let force_last = p == t - 1 && rng.random::<f32>() < 0.5;
                if rng.random::<f32>() < mask_prob || force_last {
                    tgt[p] = padded[p];
                    input[p] = mask_tok;
                    masked_any = true;
                }
            }
            if !masked_any {
                // Guarantee at least one training signal per sequence.
                let p = t - 1;
                tgt[p] = padded[p];
                input[p] = mask_tok;
            }
            targets.extend_from_slice(&tgt);
            inputs.push(input);
        }
        (inputs, targets, pad_lens)
    }

    #[allow(clippy::too_many_arguments)]
    fn train_step(
        &mut self,
        g: &Graph,
        inputs: &[Vec<ItemId>],
        targets: &[ItemId],
        pad_lens: &[usize],
        pad: ItemId,
        step: u64,
        opt: &mut Adam,
        clip: f32,
    ) -> f32 {
        let t = self.max_len;
        g.reset();
        let ctx = FwdCtx::new(g, &self.store, true, step);
        // Bidirectional attention with key-padding masking only.
        let bias = AttnBias::Base(key_padding_mask(t, pad_lens));
        let mut h = self.pos.add_to(&ctx, self.emb.lookup_seq(&ctx, inputs));
        for block in &self.blocks {
            h = block.forward(&ctx, h, &bias);
        }
        let logits = self.out.forward3d(&ctx, h);
        let loss = logits.cross_entropy(targets, pad);
        let loss_val = loss.item();
        self.store.zero_grad();
        ctx.backprop(loss);
        drop(ctx);
        opt.step_clipped(&mut self.store, clip);
        loss_val
    }

    /// Serialise the trained parameters (IRSP format).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.store.save_parameters(writer)
    }

    /// Reconstruct a model of the given architecture and load trained
    /// parameters into it (architecture-checked by name/shape).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_items: usize,
        config: &Bert4RecConfig,
    ) -> std::io::Result<Self> {
        let mut arch_cfg = config.clone();
        arch_cfg.train.epochs = 0; // build architecture only
        let mut model = Bert4Rec::fit(&[], num_items, &arch_cfg);
        model.store.load_parameters(reader)?;
        Ok(model)
    }
}

impl SequentialScorer for Bert4Rec {
    fn num_items(&self) -> usize {
        self.num_items
    }

    /// Score by appending `[MASK]` and predicting it, as in the original
    /// Bert4Rec evaluation protocol.  This graph-path forward is the
    /// reference implementation `score_batch`'s tape-free engine is tested
    /// against.
    fn score(&self, _user: UserId, history: &[ItemId]) -> Vec<f32> {
        let pad = pad_token(self.num_items);
        let mut seq: Vec<ItemId> = history.to_vec();
        seq.push(self.mask_token());
        let padded = pad_to(&seq, self.max_len, pad, PaddingScheme::Pre);
        let t = padded.len();
        let pad_len = padded.iter().take_while(|&&x| x == pad).count();
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &self.store, false, 0);
        let bias = AttnBias::Base(key_padding_mask(t, &[pad_len]));
        let mut h = self.pos.add_to(&ctx, self.emb.lookup_seq(&ctx, &[padded]));
        for block in &self.blocks {
            h = block.forward(&ctx, h, &bias);
        }
        let logits = self.out.forward3d(&ctx, h).select_step(t - 1).value();
        logits.data()[..self.num_items].to_vec()
    }

    /// Batched `[MASK]`-prediction through the tape-free inference engine:
    /// all queries share one padded `[B, T]` pass, and the final block is
    /// evaluated at the mask position only.  Per row this reproduces
    /// [`Bert4Rec::score`] exactly.
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), histories.len(), "score_batch users/histories length mismatch");
        if histories.is_empty() {
            return Vec::new();
        }
        let pad = pad_token(self.num_items);
        let t = self.max_len;
        let mut padded = Vec::with_capacity(histories.len());
        let mut pad_lens = Vec::with_capacity(histories.len());
        for h in histories {
            let mut seq: Vec<ItemId> = h.to_vec();
            seq.push(self.mask_token());
            let row = pad_to(&seq, t, pad, PaddingScheme::Pre);
            pad_lens.push(row.iter().take_while(|&&x| x == pad).count());
            padded.push(row);
        }
        let bias = InferBias { base: key_padding_mask(t, &pad_lens), scaled_column: None };
        let mut h = self.emb.infer_lookup_seq(&self.store, &padded);
        self.pos.infer_add_in_place(&self.store, &mut h);
        let last = match self.blocks.split_last() {
            Some((final_block, earlier)) => {
                for block in earlier {
                    h = block.infer(&self.store, &h, &bias);
                }
                final_block.infer_last_query(&self.store, &h, &bias, t - 1)
            }
            None => h.select_step(t - 1),
        };
        let logits = self.out.infer(&self.store, &last);
        let vocab = self.num_items + 2;
        logits.data().chunks(vocab).map(|row| row[..self.num_items].to_vec()).collect()
    }

    fn name(&self) -> &'static str {
        "Bert4Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_of;

    /// Cycle walks with *varying lengths* so item identity does not
    /// correlate with absolute position (a fixed-length cycle corpus lets a
    /// positional model shortcut the cloze task without learning
    /// transitions).
    fn cycle_seqs(n_items: usize, n_seqs: usize, max_len: usize) -> Vec<SubSeq> {
        (0..n_seqs)
            .map(|s| {
                let len = max_len - (s % 5);
                SubSeq { user: s, items: (0..len).map(|k| (s + k) % n_items).collect() }
            })
            .collect()
    }

    #[test]
    fn learns_cycle_transitions() {
        let seqs = cycle_seqs(8, 40, 10);
        let cfg = Bert4RecConfig {
            dim: 16,
            layers: 1,
            heads: 2,
            max_len: 10,
            dropout: 0.0,
            mask_prob: 0.3,
            train: NeuralTrainConfig { epochs: 20, lr: 5e-3, ..Default::default() },
        };
        let model = Bert4Rec::fit(&seqs, 8, &cfg);
        let mut hits = 0;
        for prev in 0..8usize {
            // Use a history long enough to match the training length
            // distribution (position embeddings are length-sensitive).
            let history: Vec<ItemId> = (0..6).map(|k| (prev + 8 + k - 5) % 8).collect();
            let s = model.score(0, &history);
            if rank_of(&s, (prev + 1) % 8) <= 2 {
                hits += 1;
            }
        }
        assert!(hits >= 5, "Bert4Rec learned only {hits}/8 transitions");
    }

    #[test]
    fn scores_exclude_special_tokens() {
        let seqs = cycle_seqs(5, 4, 6);
        let cfg = Bert4RecConfig {
            dim: 8,
            layers: 1,
            heads: 1,
            max_len: 6,
            dropout: 0.0,
            mask_prob: 0.2,
            train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        };
        let model = Bert4Rec::fit(&seqs, 5, &cfg);
        assert_eq!(model.score(0, &[0, 1]).len(), 5);
    }
}
