//! GRU4Rec — RNN-based sequential recommendation (Hidasi et al.).

use irs_data::split::SubSeq;
use irs_data::{pad_token, ItemId, UserId};
use irs_nn::{
    Adam, CacheState, Embedding, FwdCtx, Gru, GruStreamState, Linear, Optimizer, ParamStore,
};
use irs_tensor::{Graph, Tensor};
use rand::SeedableRng;

use crate::batch::make_lm_batches;
use crate::{NeuralTrainConfig, SequentialScorer};

/// GRU4Rec hyperparameters.
#[derive(Debug, Clone)]
pub struct Gru4RecConfig {
    /// Item-embedding dimensionality.
    pub dim: usize,
    /// GRU hidden size.
    pub hidden: usize,
    /// Maximum unrolled sequence length.
    pub max_len: usize,
    /// Shared training options.
    pub train: NeuralTrainConfig,
}

impl Default for Gru4RecConfig {
    fn default() -> Self {
        Gru4RecConfig { dim: 32, hidden: 32, max_len: 24, train: NeuralTrainConfig::default() }
    }
}

/// Per-session incremental state for [`Gru4Rec`]: the window tokens the
/// carried hidden state has consumed, plus the streaming GRU state itself
/// (fetched inference weights and the `[hidden]` vector).
pub struct GruCacheState {
    tokens: Vec<ItemId>,
    stream: GruStreamState,
}

impl CacheState for GruCacheState {
    fn resident_bytes(&self) -> usize {
        self.tokens.capacity() * std::mem::size_of::<ItemId>() + self.stream.resident_bytes()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A trained GRU4Rec model.
pub struct Gru4Rec {
    store: ParamStore,
    emb: Embedding,
    gru: Gru,
    out: Linear,
    num_items: usize,
    max_len: usize,
    epoch_losses: Vec<f32>,
}

impl Gru4Rec {
    /// Train on subsequences; the vocabulary is `num_items + 1` (PAD).
    pub fn fit(seqs: &[SubSeq], num_items: usize, config: &Gru4RecConfig) -> Self {
        let pad = pad_token(num_items);
        let vocab = num_items + 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "gru4rec.emb", vocab, config.dim, &mut rng);
        let gru = Gru::new(&mut store, "gru4rec.gru", config.dim, config.hidden, &mut rng);
        let out = Linear::new(&mut store, "gru4rec.out", config.hidden, vocab, true, &mut rng);
        let mut model = Gru4Rec {
            store,
            emb,
            gru,
            out,
            num_items,
            max_len: config.max_len,
            epoch_losses: Vec::new(),
        };

        let mut opt = Adam::new(config.train.lr);
        let mut step = 0u64;
        // One tape for the whole run, reset per minibatch (buffer reuse).
        let graph = Graph::new();
        for epoch in 0..config.train.epochs {
            let batches =
                make_lm_batches(seqs, config.max_len, pad, config.train.batch_size, &mut rng);
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for batch in &batches {
                graph.reset();
                let ctx = FwdCtx::new(&graph, &model.store, true, step);
                step += 1;
                let x = model.emb.lookup_seq(&ctx, &batch.inputs);
                let h = model.gru.forward_seq(&ctx, x);
                let logits = model.out.forward3d(&ctx, h);
                let loss = logits.cross_entropy(&batch.targets, pad);
                epoch_loss += loss.item();
                n += 1;
                model.store.zero_grad();
                ctx.backprop(loss);
                drop(ctx);
                opt.step_clipped(&mut model.store, config.train.clip);
            }
            let mean_loss = epoch_loss / n.max(1) as f32;
            model.epoch_losses.push(mean_loss);
            if config.train.verbose {
                println!("GRU4Rec epoch {epoch}: loss {mean_loss:.4}");
            }
        }
        model
    }

    /// Mean training loss per epoch, recorded during [`Gru4Rec::fit`] —
    /// pinned by the trajectory determinism tests.
    pub fn training_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    /// Serialise the trained parameters (IRSP format).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.store.save_parameters(writer)
    }

    /// Reconstruct a model of the given architecture and load trained
    /// parameters into it (architecture-checked by name/shape).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_items: usize,
        config: &Gru4RecConfig,
    ) -> std::io::Result<Self> {
        let mut arch_cfg = config.clone();
        arch_cfg.train.epochs = 0; // build architecture only
        let mut model = Gru4Rec::fit(&[], num_items, &arch_cfg);
        model.store.load_parameters(reader)?;
        Ok(model)
    }

    /// Average next-token cross-entropy on held-out subsequences.
    pub fn validation_loss(&self, seqs: &[SubSeq]) -> f32 {
        let pad = pad_token(self.num_items);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let batches = make_lm_batches(seqs, self.max_len, pad, 16, &mut rng);
        let mut total = 0.0;
        let mut n = 0usize;
        let graph = Graph::new();
        for batch in &batches {
            graph.reset();
            let ctx = FwdCtx::new(&graph, &self.store, false, 0);
            let x = self.emb.lookup_seq(&ctx, &batch.inputs);
            let h = self.gru.forward_seq(&ctx, x);
            let logits = self.out.forward3d(&ctx, h);
            total += logits.cross_entropy(&batch.targets, pad).item();
            n += 1;
        }
        total / n.max(1) as f32
    }
}

impl SequentialScorer for Gru4Rec {
    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score(&self, _user: UserId, history: &[ItemId]) -> Vec<f32> {
        if history.is_empty() {
            return vec![0.0; self.num_items];
        }
        let start = crate::hopping_window_start(history.len(), self.max_len);
        let recent: Vec<ItemId> = history[start..].to_vec();
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &self.store, false, 0);
        let x = self.emb.lookup_seq(&ctx, &[recent]);
        let h = self.gru.forward_last(&ctx, x);
        let logits = self.out.forward2d(&ctx, h).value();
        logits.data()[..self.num_items].to_vec()
    }

    /// Batched tape-free forward through the `irs_nn` inference engine:
    /// ragged histories are *post*-padded to the longest row so the
    /// recurrence over real tokens is untouched (a GRU state at step `t`
    /// only depends on steps `≤ t`), then [`Gru::infer_last`] runs the
    /// fused-gate recurrence and reads each row's hidden state at its own
    /// last real position — bitwise identical to running the row alone
    /// through the scalar graph path ([`Gru4Rec::score`]).
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), histories.len(), "score_batch users/histories length mismatch");
        let live: Vec<usize> = (0..histories.len()).filter(|&i| !histories[i].is_empty()).collect();
        let mut out = vec![vec![0.0; self.num_items]; histories.len()];
        if live.is_empty() {
            return out;
        }
        let pad = pad_token(self.num_items);
        let mut rows = Vec::with_capacity(live.len());
        let mut lens = Vec::with_capacity(live.len());
        for &i in &live {
            let h = histories[i];
            let start = crate::hopping_window_start(h.len(), self.max_len);
            rows.push(h[start..].to_vec());
            lens.push(h.len() - start);
        }
        let t_max = lens.iter().copied().max().expect("non-empty batch");
        for row in &mut rows {
            row.resize(t_max, pad);
        }
        let x = self.emb.infer_lookup_seq(&self.store, &rows);
        let last = self.gru.infer_last(&self.store, &x, &lens);
        let logits = self.out.infer(&self.store, &last);
        let vocab = self.num_items + 1;
        for (r, &i) in live.iter().enumerate() {
            out[i] = logits.data()[r * vocab..r * vocab + self.num_items].to_vec();
        }
        out
    }

    /// A recurrence is inherently append-only, so GRU4Rec has an
    /// incremental path in every configuration (no layout switch needed).
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        Some(Box::new(GruCacheState {
            tokens: Vec::new(),
            stream: self.gru.stream_state(&self.store),
        }))
    }

    /// Carry the GRU hidden state across serve steps: a hit feeds only the
    /// new suffix tokens through [`Gru::stream_step`].  The context window
    /// advances in hops ([`crate::hopping_window_start`]), so the consumed
    /// prefix stays valid between hops even when the session outgrows
    /// `max_len`; on a hop the prefix check fails and the bounded window
    /// is replayed from a reset state.  Bitwise-identical to
    /// [`Gru4Rec::score`]: the streaming step is pinned against
    /// [`Gru::infer_last`], which is pinned against the scalar graph path.
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        let Some(cache) = state.as_any_mut().downcast_mut::<GruCacheState>() else {
            return (self.score(user, history), false);
        };
        if history.is_empty() {
            return (vec![0.0; self.num_items], false);
        }
        let start = crate::hopping_window_start(history.len(), self.max_len);
        let recent = &history[start..];
        let hit = !cache.tokens.is_empty()
            && recent.len() >= cache.tokens.len()
            && recent[..cache.tokens.len()] == cache.tokens[..];
        if !hit {
            cache.tokens.clear();
            cache.stream.reset();
        }
        let consumed = cache.tokens.len();
        for &tok in &recent[consumed..] {
            let x = self.emb.infer_lookup(&self.store, &[tok]);
            self.gru.stream_step(&self.store, &mut cache.stream, x.data());
            cache.tokens.push(tok);
        }
        let hidden = cache.stream.hidden();
        let h = Tensor::from_vec(hidden.to_vec(), &[1, hidden.len()]);
        let logits = self.out.infer(&self.store, &h);
        (logits.data()[..self.num_items].to_vec(), hit)
    }

    fn name(&self) -> &'static str {
        "GRU4Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_of;

    /// Deterministic cycle data: item k is always followed by k+1 (mod n).
    fn cycle_seqs(n_items: usize, n_seqs: usize, len: usize) -> Vec<SubSeq> {
        (0..n_seqs)
            .map(|s| SubSeq { user: s, items: (0..len).map(|k| (s + k) % n_items).collect() })
            .collect()
    }

    #[test]
    fn learns_cycle_transitions() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = Gru4RecConfig {
            dim: 16,
            hidden: 16,
            max_len: 10,
            train: NeuralTrainConfig { epochs: 12, lr: 5e-3, ..Default::default() },
        };
        let model = Gru4Rec::fit(&seqs, 8, &cfg);
        let mut hits = 0;
        for prev in 0..8usize {
            let s = model.score(0, &[(prev + 7) % 8, prev]);
            if rank_of(&s, (prev + 1) % 8) <= 2 {
                hits += 1;
            }
        }
        assert!(hits >= 6, "GRU4Rec learned only {hits}/8 transitions");
    }

    #[test]
    fn empty_history_scores_are_flat() {
        let seqs = cycle_seqs(5, 4, 6);
        let cfg = Gru4RecConfig {
            dim: 8,
            hidden: 8,
            max_len: 6,
            train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        };
        let model = Gru4Rec::fit(&seqs, 5, &cfg);
        assert_eq!(model.score(0, &[]), vec![0.0; 5]);
    }

    #[test]
    fn cached_scores_match_cold_bitwise() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = Gru4RecConfig {
            dim: 16,
            hidden: 16,
            max_len: 6,
            train: NeuralTrainConfig { epochs: 2, lr: 3e-3, ..Default::default() },
        };
        let model = Gru4Rec::fit(&seqs, 8, &cfg);
        let mut state = model.new_incremental_state().expect("GRU always has a stream state");
        let session = [0usize, 3, 1, 4, 2, 5, 7, 6, 1, 0, 4, 3, 6, 2];
        let mut long_session_hits = 0;
        for step in 1..=session.len() {
            let history = &session[..step];
            let (scores, hit) = model.score_incremental(0, history, state.as_mut());
            // Step 1 primes; afterwards the hopping window keeps the
            // consumed prefix valid on every step that doesn't hop.
            let expect = step > 1
                && crate::hopping_window_start(step, cfg.max_len)
                    == crate::hopping_window_start(step - 1, cfg.max_len);
            assert_eq!(hit, expect, "step {step}");
            if hit && step > cfg.max_len {
                long_session_hits += 1;
            }
            assert_eq!(scores, model.score(0, history), "step {step}");
        }
        assert!(
            long_session_hits > 0,
            "sessions outgrowing max_len must keep cache hits between hops"
        );
        assert!(state.resident_bytes() > 0);
        let mutated = [5usize, 2, 0];
        let (scores, hit) = model.score_incremental(0, &mutated, state.as_mut());
        assert!(!hit, "changed prefix must rebuild");
        assert_eq!(scores, model.score(0, &mutated));
    }

    #[test]
    fn validation_loss_is_finite_and_positive() {
        let seqs = cycle_seqs(6, 8, 8);
        let cfg = Gru4RecConfig {
            dim: 8,
            hidden: 8,
            max_len: 8,
            train: NeuralTrainConfig { epochs: 2, ..Default::default() },
        };
        let model = Gru4Rec::fit(&seqs, 6, &cfg);
        let vl = model.validation_loss(&seqs);
        assert!(vl.is_finite() && vl > 0.0);
    }
}
