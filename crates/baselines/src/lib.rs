//! # irs_baselines — baseline sequential recommenders
//!
//! Rust re-implementations (on the shared [`irs_nn`] substrate) of every
//! baseline the paper evaluates (§IV-C) and every evaluator candidate
//! (§IV-B3):
//!
//! | Model      | Family                       | Paper role                          |
//! |------------|------------------------------|-------------------------------------|
//! | [`Pop`]    | popularity                   | Vanilla / Rec2Inf baseline          |
//! | [`BprMf`]  | matrix factorisation         | Vanilla / Rec2Inf baseline          |
//! | [`TransRec`]| translation embeddings      | Vanilla / Rec2Inf baseline          |
//! | [`Gru4Rec`]| RNN                          | baseline + evaluator candidate      |
//! | [`Caser`]  | CNN                          | baseline + evaluator candidate      |
//! | [`SasRec`] | causal self-attention        | baseline + evaluator candidate      |
//! | [`Bert4Rec`]| bidirectional self-attention| evaluator (best HR@20/MRR in paper) |
//!
//! Every model implements [`SequentialScorer`]: *given a user and an item
//! history, produce a score for every item as the next interaction*.  The
//! IRS frameworks in `irs_core` and the offline evaluator in `irs_eval`
//! are all generic over this trait.

mod batch;
mod bert4rec;
mod bpr;
mod caser;
mod gru4rec;
mod pop;
mod sasrec;
mod transrec;

pub use batch::{make_lm_batches, LmBatch};
pub use bert4rec::{Bert4Rec, Bert4RecConfig};
pub use bpr::{BprConfig, BprMf};
pub use caser::{Caser, CaserCacheState, CaserConfig};
pub use gru4rec::{Gru4Rec, Gru4RecConfig, GruCacheState};
pub use pop::Pop;
pub use sasrec::{SasRec, SasRecCacheState, SasRecConfig};
pub use transrec::{TransRec, TransRecConfig};

use irs_data::{ItemId, UserId};
use irs_nn::CacheState;

/// A model that scores every item as the candidate next interaction.
///
/// Scores are unnormalised (higher = more likely); callers softmax them
/// when probabilities are needed.  `history` contains real item ids only
/// (no padding); implementations truncate long histories themselves.
pub trait SequentialScorer {
    /// Number of scoreable items (the real catalogue, excluding PAD/MASK).
    fn num_items(&self) -> usize;

    /// Score every item given `user`'s `history`; returns `num_items()`
    /// scores.
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32>;

    /// Like [`SequentialScorer::score`], but writing into a caller-owned
    /// buffer (cleared first) so a serving loop can reuse one allocation
    /// across requests.  The provided implementation copies the scalar
    /// path's result; allocation-sensitive models ([`Pop`]) override it.
    fn score_into(&self, user: UserId, history: &[ItemId], out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.score(user, history));
    }

    /// Score a batch of `(user, history)` queries in one call.
    ///
    /// The provided implementation loops over [`SequentialScorer::score`];
    /// neural models override it with a real padded-batch forward pass so
    /// per-query graph overhead amortises across the batch.  Overrides must
    /// return exactly what the scalar path returns for every row (the
    /// workspace kernels make this bitwise, see `irs_tensor::matmul_into`);
    /// `batch_properties.rs` asserts the equivalence for every model.
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), histories.len(), "score_batch users/histories length mismatch");
        users.iter().zip(histories).map(|(&u, h)| self.score(u, h)).collect()
    }

    /// A fresh per-session incremental state for
    /// [`SequentialScorer::score_incremental`], or `None` when this model
    /// has no incremental path (the default).  Models whose encoding is
    /// append-only over the history ([`SasRec`] in that layout,
    /// [`Gru4Rec`], [`Caser`]) return their concrete [`CacheState`].
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        None
    }

    /// Score using (and updating) a per-session incremental `state`
    /// previously obtained from
    /// [`SequentialScorer::new_incremental_state`].  Returns the scores
    /// plus whether the stored prefix was reused (`true`) instead of
    /// rebuilt.  The scores must be exactly what
    /// [`SequentialScorer::score`] returns — the incremental paths are
    /// bitwise-pinned to the cold re-encode by property tests.  The
    /// default ignores the state and scores cold.
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        let _ = state;
        (self.score(user, history), false)
    }

    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
}

impl<S: SequentialScorer + ?Sized> SequentialScorer for &S {
    fn num_items(&self) -> usize {
        (**self).num_items()
    }
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32> {
        (**self).score(user, history)
    }
    fn score_into(&self, user: UserId, history: &[ItemId], out: &mut Vec<f32>) {
        (**self).score_into(user, history, out)
    }
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        (**self).score_batch(users, histories)
    }
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        (**self).new_incremental_state()
    }
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        (**self).score_incremental(user, history, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: SequentialScorer + ?Sized> SequentialScorer for Box<S> {
    fn num_items(&self) -> usize {
        (**self).num_items()
    }
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32> {
        (**self).score(user, history)
    }
    fn score_into(&self, user: UserId, history: &[ItemId], out: &mut Vec<f32>) {
        (**self).score_into(user, history, out)
    }
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        (**self).score_batch(users, histories)
    }
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        (**self).new_incremental_state()
    }
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        (**self).score_incremental(user, history, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Shared training hyperparameters for the neural baselines.
#[derive(Debug, Clone)]
pub struct NeuralTrainConfig {
    /// Passes over the training subsequences.
    pub epochs: usize,
    /// Sequences per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-clipping threshold (global L2 norm).
    pub clip: f32,
    /// RNG seed (batch shuffling, dropout, masking).
    pub seed: u64,
    /// Print a progress line per epoch when true.
    pub verbose: bool,
}

impl Default for NeuralTrainConfig {
    fn default() -> Self {
        NeuralTrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            clip: 5.0,
            seed: 0xbead,
            verbose: false,
        }
    }
}

/// Start index of the hopping context window for a history of `len`
/// interactions under a model window budget of `max_len`.
///
/// Incremental session caches (SASRec's per-layer K/V rows, GRU4Rec's
/// carried hidden state) are prefix caches: a hit requires the previous
/// window to be a prefix of the current one.  A window that slides by one
/// every step (`len - max_len`) changes its first token on *every* step
/// past `max_len`, so long sessions degrade to a full per-step rebuild.
/// Instead the window start advances in hops of `H = max(1, max_len/2)`:
///
/// ```text
/// start(len) = 0                              if len <= max_len
///            = ceil((len - max_len) / H) * H  otherwise
/// ```
///
/// Between hops the start is constant, so each new interaction is a cache
/// hit that encodes exactly one suffix token; once per `H` steps the
/// window hops forward and the bounded remainder (at most `max_len` rows,
/// reusing the state's existing buffers) is re-encoded.  The window length
/// stays within `(max_len - H, max_len]` — never longer than the position
/// table — and both the cold scorers and the cached paths call this same
/// policy, keeping them bitwise identical.
pub fn hopping_window_start(len: usize, max_len: usize) -> usize {
    let l = max_len.max(1);
    if len <= l {
        return 0;
    }
    let h = (l / 2).max(1);
    (len - l).div_ceil(h) * h
}

/// Rank (1-based) of `item` under the given scores: `1 + |{j : s_j > s_item}|`.
///
/// Shared by evaluation metrics (IoR, HR@K, MRR).
pub fn rank_of(scores: &[f32], item: ItemId) -> usize {
    let s = scores[item];
    1 + scores.iter().filter(|&&x| x > s).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopping_window_never_exceeds_budget_and_hops_in_steps() {
        for max_len in [1usize, 2, 3, 6, 24] {
            let h = (max_len / 2).max(1);
            let mut prev_start = 0;
            for len in 1..6 * max_len {
                let start = hopping_window_start(len, max_len);
                assert!(len - start <= max_len, "window too long at len={len} L={max_len}");
                assert!(start <= len, "start past end at len={len}");
                assert!(start >= prev_start, "start must be monotone at len={len}");
                assert!(start.is_multiple_of(h), "start must sit on a hop boundary at len={len}");
                if len <= max_len {
                    assert_eq!(start, 0, "short sessions keep the full history");
                } else {
                    assert!(len - start > max_len - h, "window shorter than the hop floor");
                }
                prev_start = start;
            }
            // Between hops the start is constant — that is what converts
            // sliding-window misses into cache hits.  (With a degenerate
            // hop of 1, i.e. max_len <= 3, every long step hops: a
            // one-or-two token window has no reusable prefix to keep.)
            if h >= 2 {
                let stable = (1..6 * max_len)
                    .filter(|&n| {
                        n > 1
                            && hopping_window_start(n, max_len)
                                == hopping_window_start(n - 1, max_len)
                    })
                    .count();
                assert!(stable >= 6 * max_len / 2, "most steps must not hop (L={max_len})");
            }
        }
    }

    #[test]
    fn rank_of_is_one_based_and_handles_ties() {
        let scores = vec![0.1, 0.9, 0.5, 0.9];
        assert_eq!(rank_of(&scores, 1), 1); // tie broken optimistically
        assert_eq!(rank_of(&scores, 3), 1);
        assert_eq!(rank_of(&scores, 2), 3);
        assert_eq!(rank_of(&scores, 0), 4);
    }
}
