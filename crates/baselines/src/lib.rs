//! # irs_baselines — baseline sequential recommenders
//!
//! Rust re-implementations (on the shared [`irs_nn`] substrate) of every
//! baseline the paper evaluates (§IV-C) and every evaluator candidate
//! (§IV-B3):
//!
//! | Model      | Family                       | Paper role                          |
//! |------------|------------------------------|-------------------------------------|
//! | [`Pop`]    | popularity                   | Vanilla / Rec2Inf baseline          |
//! | [`BprMf`]  | matrix factorisation         | Vanilla / Rec2Inf baseline          |
//! | [`TransRec`]| translation embeddings      | Vanilla / Rec2Inf baseline          |
//! | [`Gru4Rec`]| RNN                          | baseline + evaluator candidate      |
//! | [`Caser`]  | CNN                          | baseline + evaluator candidate      |
//! | [`SasRec`] | causal self-attention        | baseline + evaluator candidate      |
//! | [`Bert4Rec`]| bidirectional self-attention| evaluator (best HR@20/MRR in paper) |
//!
//! Every model implements [`SequentialScorer`]: *given a user and an item
//! history, produce a score for every item as the next interaction*.  The
//! IRS frameworks in `irs_core` and the offline evaluator in `irs_eval`
//! are all generic over this trait.

mod batch;
mod bert4rec;
mod bpr;
mod caser;
mod gru4rec;
mod pop;
mod sasrec;
mod transrec;

pub use batch::{make_lm_batches, LmBatch};
pub use bert4rec::{Bert4Rec, Bert4RecConfig};
pub use bpr::{BprConfig, BprMf};
pub use caser::{Caser, CaserCacheState, CaserConfig};
pub use gru4rec::{Gru4Rec, Gru4RecConfig, GruCacheState};
pub use pop::Pop;
pub use sasrec::{SasRec, SasRecCacheState, SasRecConfig};
pub use transrec::{TransRec, TransRecConfig};

use irs_data::{ItemId, UserId};
use irs_nn::CacheState;

/// A model that scores every item as the candidate next interaction.
///
/// Scores are unnormalised (higher = more likely); callers softmax them
/// when probabilities are needed.  `history` contains real item ids only
/// (no padding); implementations truncate long histories themselves.
pub trait SequentialScorer {
    /// Number of scoreable items (the real catalogue, excluding PAD/MASK).
    fn num_items(&self) -> usize;

    /// Score every item given `user`'s `history`; returns `num_items()`
    /// scores.
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32>;

    /// Like [`SequentialScorer::score`], but writing into a caller-owned
    /// buffer (cleared first) so a serving loop can reuse one allocation
    /// across requests.  The provided implementation copies the scalar
    /// path's result; allocation-sensitive models ([`Pop`]) override it.
    fn score_into(&self, user: UserId, history: &[ItemId], out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.score(user, history));
    }

    /// Score a batch of `(user, history)` queries in one call.
    ///
    /// The provided implementation loops over [`SequentialScorer::score`];
    /// neural models override it with a real padded-batch forward pass so
    /// per-query graph overhead amortises across the batch.  Overrides must
    /// return exactly what the scalar path returns for every row (the
    /// workspace kernels make this bitwise, see `irs_tensor::matmul_into`);
    /// `batch_properties.rs` asserts the equivalence for every model.
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), histories.len(), "score_batch users/histories length mismatch");
        users.iter().zip(histories).map(|(&u, h)| self.score(u, h)).collect()
    }

    /// A fresh per-session incremental state for
    /// [`SequentialScorer::score_incremental`], or `None` when this model
    /// has no incremental path (the default).  Models whose encoding is
    /// append-only over the history ([`SasRec`] in that layout,
    /// [`Gru4Rec`], [`Caser`]) return their concrete [`CacheState`].
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        None
    }

    /// Score using (and updating) a per-session incremental `state`
    /// previously obtained from
    /// [`SequentialScorer::new_incremental_state`].  Returns the scores
    /// plus whether the stored prefix was reused (`true`) instead of
    /// rebuilt.  The scores must be exactly what
    /// [`SequentialScorer::score`] returns — the incremental paths are
    /// bitwise-pinned to the cold re-encode by property tests.  The
    /// default ignores the state and scores cold.
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        let _ = state;
        (self.score(user, history), false)
    }

    /// Display name used in experiment tables.
    fn name(&self) -> &'static str;
}

impl<S: SequentialScorer + ?Sized> SequentialScorer for &S {
    fn num_items(&self) -> usize {
        (**self).num_items()
    }
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32> {
        (**self).score(user, history)
    }
    fn score_into(&self, user: UserId, history: &[ItemId], out: &mut Vec<f32>) {
        (**self).score_into(user, history, out)
    }
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        (**self).score_batch(users, histories)
    }
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        (**self).new_incremental_state()
    }
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        (**self).score_incremental(user, history, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: SequentialScorer + ?Sized> SequentialScorer for Box<S> {
    fn num_items(&self) -> usize {
        (**self).num_items()
    }
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32> {
        (**self).score(user, history)
    }
    fn score_into(&self, user: UserId, history: &[ItemId], out: &mut Vec<f32>) {
        (**self).score_into(user, history, out)
    }
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        (**self).score_batch(users, histories)
    }
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        (**self).new_incremental_state()
    }
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        (**self).score_incremental(user, history, state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Shared training hyperparameters for the neural baselines.
#[derive(Debug, Clone)]
pub struct NeuralTrainConfig {
    /// Passes over the training subsequences.
    pub epochs: usize,
    /// Sequences per minibatch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-clipping threshold (global L2 norm).
    pub clip: f32,
    /// RNG seed (batch shuffling, dropout, masking).
    pub seed: u64,
    /// Print a progress line per epoch when true.
    pub verbose: bool,
}

impl Default for NeuralTrainConfig {
    fn default() -> Self {
        NeuralTrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 1e-3,
            clip: 5.0,
            seed: 0xbead,
            verbose: false,
        }
    }
}

/// Rank (1-based) of `item` under the given scores: `1 + |{j : s_j > s_item}|`.
///
/// Shared by evaluation metrics (IoR, HR@K, MRR).
pub fn rank_of(scores: &[f32], item: ItemId) -> usize {
    let s = scores[item];
    1 + scores.iter().filter(|&&x| x > s).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_is_one_based_and_handles_ties() {
        let scores = vec![0.1, 0.9, 0.5, 0.9];
        assert_eq!(rank_of(&scores, 1), 1); // tie broken optimistically
        assert_eq!(rank_of(&scores, 3), 1);
        assert_eq!(rank_of(&scores, 2), 3);
        assert_eq!(rank_of(&scores, 0), 4);
    }
}
