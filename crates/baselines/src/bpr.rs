//! BPR — Bayesian Personalized Ranking matrix factorisation
//! (Rendle et al., 2012).
//!
//! Trained with hand-derived SGD updates: each step touches only three
//! embedding rows, so routing it through the dense autograd tape would be
//! wasteful.

use irs_data::{Dataset, ItemId, UserId};
use rand::{Rng, SeedableRng};

use crate::SequentialScorer;

/// BPR hyperparameters.
#[derive(Debug, Clone)]
pub struct BprConfig {
    /// Latent dimensionality.
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularisation.
    pub reg: f32,
    /// Sampled (user, pos, neg) triples per epoch = `samples_per_user ×
    /// num_users`.
    pub samples_per_user: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig { dim: 24, lr: 0.05, reg: 0.01, samples_per_user: 40, epochs: 8, seed: 0xb92 }
    }
}

/// Trained BPR model: user factors, item factors and item biases.
#[derive(Debug, Clone)]
pub struct BprMf {
    dim: usize,
    num_items: usize,
    user_factors: Vec<f32>,
    item_factors: Vec<f32>,
    item_bias: Vec<f32>,
}

impl BprMf {
    /// Train on the dataset's sequences (every `(user, item)` occurrence is
    /// a positive).
    pub fn fit(dataset: &Dataset, config: &BprConfig) -> Self {
        let (u_n, i_n, d) = (dataset.num_users, dataset.num_items, config.dim);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut model = BprMf {
            dim: d,
            num_items: i_n,
            user_factors: (0..u_n * d).map(|_| (rng.random::<f32>() - 0.5) * 0.1).collect(),
            item_factors: (0..i_n * d).map(|_| (rng.random::<f32>() - 0.5) * 0.1).collect(),
            item_bias: vec![0.0; i_n],
        };

        // Positive sets per user for negative rejection.
        let positives: Vec<Vec<ItemId>> = dataset
            .sequences
            .iter()
            .map(|s| {
                let mut v = s.clone();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();

        for _ in 0..config.epochs {
            for (u, pos) in positives.iter().enumerate() {
                if pos.is_empty() {
                    continue;
                }
                for _ in 0..config.samples_per_user {
                    let i = pos[rng.random_range(0..pos.len())];
                    // Rejection-sample a negative.
                    let mut j = rng.random_range(0..i_n);
                    let mut guard = 0;
                    while pos.binary_search(&j).is_ok() && guard < 50 {
                        j = rng.random_range(0..i_n);
                        guard += 1;
                    }
                    model.sgd_step(u, i, j, config.lr, config.reg);
                }
            }
        }
        model
    }

    /// One BPR-SGD step on triple `(u, i⁺, j⁻)`.
    fn sgd_step(&mut self, u: UserId, i: ItemId, j: ItemId, lr: f32, reg: f32) {
        let d = self.dim;
        let x = {
            let pu = &self.user_factors[u * d..(u + 1) * d];
            let qi = &self.item_factors[i * d..(i + 1) * d];
            let qj = &self.item_factors[j * d..(j + 1) * d];
            let mut x = self.item_bias[i] - self.item_bias[j];
            for k in 0..d {
                x += pu[k] * (qi[k] - qj[k]);
            }
            x
        };
        // d/dθ −ln σ(x) = (σ(x) − 1)·dx/dθ
        let g = 1.0 / (1.0 + (-x).exp()) - 1.0;

        self.item_bias[i] -= lr * (g + reg * self.item_bias[i]);
        self.item_bias[j] -= lr * (-g + reg * self.item_bias[j]);
        for k in 0..d {
            let pu = self.user_factors[u * d + k];
            let qi = self.item_factors[i * d + k];
            let qj = self.item_factors[j * d + k];
            self.user_factors[u * d + k] -= lr * (g * (qi - qj) + reg * pu);
            self.item_factors[i * d + k] -= lr * (g * pu + reg * qi);
            self.item_factors[j * d + k] -= lr * (-g * pu + reg * qj);
        }
    }

    /// Latent dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Serialise the factor matrices and biases (IRSP format).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        use irs_tensor::Tensor;
        let d = self.dim;
        let num_users = self.user_factors.len() / d.max(1);
        let mut store = irs_nn::ParamStore::new();
        store.add("bpr.user", Tensor::from_vec(self.user_factors.clone(), &[num_users, d]));
        store.add("bpr.item", Tensor::from_vec(self.item_factors.clone(), &[self.num_items, d]));
        store.add("bpr.bias", Tensor::from_vec(self.item_bias.clone(), &[self.num_items]));
        store.save_parameters(writer)
    }

    /// Load a model saved by [`BprMf::save`].  Counts and dimensionality
    /// must match the saved shapes (shape-checked).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_users: usize,
        num_items: usize,
        dim: usize,
    ) -> std::io::Result<Self> {
        use irs_tensor::Tensor;
        let mut store = irs_nn::ParamStore::new();
        let u = store.add("bpr.user", Tensor::zeros(&[num_users, dim]));
        let i = store.add("bpr.item", Tensor::zeros(&[num_items, dim]));
        let b = store.add("bpr.bias", Tensor::zeros(&[num_items]));
        store.load_parameters(reader)?;
        Ok(BprMf {
            dim,
            num_items,
            user_factors: store.value(u).data().to_vec(),
            item_factors: store.value(i).data().to_vec(),
            item_bias: store.value(b).data().to_vec(),
        })
    }
}

impl SequentialScorer for BprMf {
    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score(&self, user: UserId, _history: &[ItemId]) -> Vec<f32> {
        let d = self.dim;
        let pu = &self.user_factors[user * d..(user + 1) * d];
        (0..self.num_items)
            .map(|i| {
                let qi = &self.item_factors[i * d..(i + 1) * d];
                self.item_bias[i] + pu.iter().zip(qi).map(|(&a, &b)| a * b).sum::<f32>()
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "BPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_of;

    /// Two user cliques with disjoint taste; BPR must rank in-clique items
    /// above out-of-clique items.
    fn clique_dataset() -> Dataset {
        let mut sequences = Vec::new();
        for u in 0..20 {
            let base = if u % 2 == 0 { 0 } else { 5 };
            sequences.push((0..5).map(|k| base + (k + u) % 5).collect());
        }
        Dataset {
            name: "clique".into(),
            num_users: 20,
            num_items: 10,
            sequences,
            genres: vec![vec![0]; 10],
            genre_names: vec!["g".into()],
            item_names: (0..10).map(|i| format!("i{i}")).collect(),
        }
    }

    #[test]
    fn learns_user_taste() {
        let d = clique_dataset();
        let model = BprMf::fit(&d, &BprConfig { epochs: 12, ..Default::default() });
        // User 0 likes items 0..5; its mean rank for those must be better.
        let s = model.score(0, &[]);
        let mean_in: f32 = (0..5).map(|i| rank_of(&s, i) as f32).sum::<f32>() / 5.0;
        let mean_out: f32 = (5..10).map(|i| rank_of(&s, i) as f32).sum::<f32>() / 5.0;
        assert!(
            mean_in + 1.0 < mean_out,
            "in-clique items must rank above out-of-clique: {mean_in} vs {mean_out}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let d = clique_dataset();
        let cfg = BprConfig { epochs: 2, ..Default::default() };
        let a = BprMf::fit(&d, &cfg);
        let b = BprMf::fit(&d, &cfg);
        assert_eq!(a.score(0, &[]), b.score(0, &[]));
    }
}
