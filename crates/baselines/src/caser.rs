//! Caser — convolutional sequence embedding (Tang & Wang, 2018).
//!
//! Horizontal convolutions (union-level patterns) are realised as
//! unfold-windows + matmul; the vertical convolution (point-level
//! patterns) as a matmul over the transposed embedding block.

use irs_data::split::{pad_to, PaddingScheme, SubSeq};
use irs_data::{pad_token, ItemId, UserId};
use irs_nn::{Activation, Adam, CacheState, Embedding, FwdCtx, Linear, Optimizer, ParamStore};
use irs_tensor::{Graph, Tensor, Var};
use rand::{seq::SliceRandom, SeedableRng};

use crate::{NeuralTrainConfig, SequentialScorer};

/// Caser hyperparameters.
#[derive(Debug, Clone)]
pub struct CaserConfig {
    /// Item/user embedding dimensionality.
    pub dim: usize,
    /// Markov window `L` (number of previous items fed to the CNN).
    pub l_window: usize,
    /// Horizontal filter heights.
    pub heights: Vec<usize>,
    /// Filters per horizontal height.
    pub n_h: usize,
    /// Vertical filters.
    pub n_v: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Shared training options.
    pub train: NeuralTrainConfig,
}

impl Default for CaserConfig {
    fn default() -> Self {
        CaserConfig {
            dim: 32,
            l_window: 5,
            heights: vec![2, 3],
            n_h: 8,
            n_v: 4,
            dropout: 0.1,
            train: NeuralTrainConfig::default(),
        }
    }
}

/// Per-session incremental state for [`Caser`]: the pre-padded `[L]`
/// token window last served plus its embedded rows (`[L·D]`).  A served
/// step slides the window by one, so the next request re-embeds a single
/// row and shifts the rest.
pub struct CaserCacheState {
    window: Vec<ItemId>,
    rows: Vec<f32>,
    primed: bool,
}

impl CacheState for CaserCacheState {
    fn resident_bytes(&self) -> usize {
        self.window.capacity() * std::mem::size_of::<ItemId>()
            + self.rows.capacity() * std::mem::size_of::<f32>()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A trained Caser model.
pub struct Caser {
    store: ParamStore,
    item_emb: Embedding,
    user_emb: Embedding,
    conv_h: Vec<Linear>,
    conv_v: Linear,
    fc: Linear,
    out: Linear,
    cfg_dim: usize,
    l_window: usize,
    heights: Vec<usize>,
    n_v: usize,
    dropout: f32,
    num_items: usize,
    num_users: usize,
    epoch_losses: Vec<f32>,
}

impl Caser {
    /// Train on sliding windows over the subsequences.
    pub fn fit(seqs: &[SubSeq], num_items: usize, num_users: usize, config: &CaserConfig) -> Self {
        for &h in &config.heights {
            assert!(h >= 1 && h <= config.l_window, "filter height {h} out of range");
        }
        let vocab = num_items + 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let item_emb = Embedding::new(&mut store, "caser.item", vocab, config.dim, &mut rng);
        let user_emb =
            Embedding::new(&mut store, "caser.user", num_users.max(1), config.dim, &mut rng);
        let conv_h: Vec<Linear> = config
            .heights
            .iter()
            .map(|&h| {
                Linear::new(
                    &mut store,
                    &format!("caser.h{h}"),
                    h * config.dim,
                    config.n_h,
                    true,
                    &mut rng,
                )
            })
            .collect();
        let conv_v =
            Linear::new(&mut store, "caser.v", config.l_window, config.n_v, false, &mut rng);
        let z_dim = config.n_h * config.heights.len() + config.n_v * config.dim;
        let fc = Linear::new(&mut store, "caser.fc", z_dim, config.dim, true, &mut rng);
        let out = Linear::new(&mut store, "caser.out", 2 * config.dim, vocab, true, &mut rng);

        let mut model = Caser {
            store,
            item_emb,
            user_emb,
            conv_h,
            conv_v,
            fc,
            out,
            cfg_dim: config.dim,
            l_window: config.l_window,
            heights: config.heights.clone(),
            n_v: config.n_v,
            dropout: config.dropout,
            num_items,
            num_users: num_users.max(1),
            epoch_losses: Vec::new(),
        };

        // Training windows: (user, L previous items, next item).
        let pad = pad_token(num_items);
        let mut windows: Vec<(UserId, Vec<ItemId>, ItemId)> = Vec::new();
        for s in seqs {
            for t in 1..s.items.len() {
                let lo = t.saturating_sub(config.l_window);
                let ctx_items = pad_to(&s.items[lo..t], config.l_window, pad, PaddingScheme::Pre);
                windows.push((s.user % model.num_users, ctx_items, s.items[t]));
            }
        }

        let mut opt = Adam::new(config.train.lr);
        let mut step = 0u64;
        // One tape for the whole run, reset per minibatch (buffer reuse).
        let graph = Graph::new();
        for epoch in 0..config.train.epochs {
            windows.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for chunk in windows.chunks(config.train.batch_size) {
                let users: Vec<UserId> = chunk.iter().map(|w| w.0).collect();
                let inputs: Vec<Vec<ItemId>> = chunk.iter().map(|w| w.1.clone()).collect();
                let targets: Vec<ItemId> = chunk.iter().map(|w| w.2).collect();
                graph.reset();
                let ctx = FwdCtx::new(&graph, &model.store, true, step);
                step += 1;
                let logits = model.forward(&ctx, &users, &inputs);
                let loss = logits.cross_entropy(&targets, pad);
                epoch_loss += loss.item();
                n += 1;
                model.store.zero_grad();
                ctx.backprop(loss);
                drop(ctx);
                opt.step_clipped(&mut model.store, config.train.clip);
            }
            let mean_loss = epoch_loss / n.max(1) as f32;
            model.epoch_losses.push(mean_loss);
            if config.train.verbose {
                println!("Caser epoch {epoch}: loss {mean_loss:.4}");
            }
        }
        model
    }

    /// Mean training loss per epoch, recorded during [`Caser::fit`] —
    /// pinned by the trajectory determinism tests.
    pub fn training_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    /// Full forward pass: users + `[B][L]` item windows -> `[B, vocab]`.
    fn forward<'g>(
        &self,
        ctx: &FwdCtx<'g, '_>,
        users: &[UserId],
        windows: &[Vec<ItemId>],
    ) -> Var<'g> {
        let b = windows.len();
        let d = self.cfg_dim;
        let l = self.l_window;
        let e = self.item_emb.lookup_seq(ctx, windows); // [B, L, D]

        let mut features: Vec<Var<'g>> = Vec::new();
        // Horizontal convolutions: per height, windowed matmul + relu + max.
        for (conv, &h) in self.conv_h.iter().zip(&self.heights) {
            let unfolded = e.unfold_windows(h); // [B, L-h+1, h*D]
            let fmap = conv.forward3d(ctx, unfolded).relu(); // [B, L-h+1, n_h]
            features.push(fmap.max_axis1()); // [B, n_h]
        }
        // Vertical convolution: weights over the L axis per embedding dim.
        let et = e.transpose_last2().reshape(&[b * d, l]); // [B*D, L]
        let v = et.matmul(ctx.param(self.conv_v.weight_id())); // [B*D, n_v]
        features.push(v.reshape(&[b, d * self.n_v]));

        let z = Var::concat_last(&features);
        let z = ctx.dropout(z.relu(), self.dropout);
        let seq_repr = self.fc.forward2d(ctx, z); // [B, D]
        let u = self.user_emb.lookup(ctx, users); // [B, D]
        let full = Var::concat_last(&[seq_repr, u]); // [B, 2D]
        self.out.forward2d(ctx, full)
    }

    /// Tape-free mirror of [`Caser::forward`] (eval mode: dropout is the
    /// identity): the identical kernels in the identical order, evaluated
    /// on [`Tensor`] values with no graph nodes and an allocation-light
    /// layout — windows arrive as one flat `[B·L]` index slice, the
    /// per-height `relu → max` epilogue folds straight into the
    /// concatenated feature buffer, and the vertical convolution writes
    /// its feature block in place (same products, same `L`-ascending
    /// accumulation and skip-zero rule as the `et @ Wv` matmul).  Every
    /// stage applies the identical arithmetic in the identical order as
    /// [`Caser::forward`], so per row the result is bitwise equal to the
    /// graph path — `batch_properties.rs` pins it.
    fn infer_forward(&self, users: &[UserId], flat_windows: &[usize]) -> Tensor {
        let d = self.cfg_dim;
        let l = self.l_window;
        let b = flat_windows.len() / l;
        let mut e = self.item_emb.infer_lookup(&self.store, flat_windows); // [B*L, D]
        e.reshape_in_place(&[b, l, d]);
        self.infer_forward_embedded(users, &e)
    }

    /// The convolutional body of [`Caser::infer_forward`] starting from
    /// already-embedded windows `e: [B, L, D]` — the incremental path
    /// ([`Caser::score_incremental`]) enters here with rows carried over
    /// from the previous serve step, which is bitwise-identical because an
    /// embedding lookup is a row copy.
    fn infer_forward_embedded(&self, users: &[UserId], e: &Tensor) -> Tensor {
        let b = e.shape()[0];
        let l = e.shape()[1];
        let d = e.shape()[2];

        let n_h_total: usize = self.conv_h.iter().map(Linear::out_dim).sum();
        let z_dim = n_h_total + d * self.n_v;
        let mut z = vec![0.0f32; b * z_dim];
        let mut off = 0;
        // Horizontal convolutions: per height, windowed matmul, then
        // relu+max fused into this height's column block of `z` (the
        // same comparison sequence as `relu` + `max_axis1`).
        for (conv, &h) in self.conv_h.iter().zip(&self.heights) {
            let unfolded = e.unfold_windows(h); // [B, L-h+1, h*D]
            let fmap = conv.infer(&self.store, &unfolded); // [B, L-h+1, n_h]
            let (w_cnt, nh) = (l - h + 1, conv.out_dim());
            for bi in 0..b {
                let zrow = &mut z[bi * z_dim + off..bi * z_dim + off + nh];
                zrow.fill(f32::NEG_INFINITY);
                for s in 0..w_cnt {
                    let frow =
                        &fmap.data()[bi * w_cnt * nh + s * nh..bi * w_cnt * nh + (s + 1) * nh];
                    for (zv, &f) in zrow.iter_mut().zip(frow) {
                        let val = f.max(0.0);
                        if val > *zv {
                            *zv = val;
                        }
                    }
                }
            }
            off += nh;
        }
        // Vertical convolution, in place: element `(di, c)` of row `bi`'s
        // feature block accumulates `Σ_l e[bi, l, di] · Wv[l, c]` with `l`
        // ascending — the identical dot product (and skip-zero-`a` rule)
        // the graph path's `[B·D, L] @ [L, n_v]` matmul performs.
        let wv = self.store.value(self.conv_v.weight_id());
        for bi in 0..b {
            let vblock = &mut z[bi * z_dim + off..(bi + 1) * z_dim];
            for di in 0..d {
                for li in 0..l {
                    let a = e.data()[bi * l * d + li * d + di];
                    if a == 0.0 {
                        continue;
                    }
                    let wrow = &wv.data()[li * self.n_v..(li + 1) * self.n_v];
                    for (o, &wc) in vblock[di * self.n_v..(di + 1) * self.n_v].iter_mut().zip(wrow)
                    {
                        *o += a * wc;
                    }
                }
            }
        }

        let mut z = Tensor::from_vec(z, &[b, z_dim]);
        Activation::Relu.apply_in_place(&mut z);
        let seq_repr = self.fc.infer(&self.store, &z); // [B, D]
        let u = self.user_emb.infer_lookup(&self.store, users); // [B, D]
        let full = Tensor::concat_last(&[&seq_repr, &u]); // [B, 2D]
        self.out.infer(&self.store, &full)
    }

    /// Serialise the trained parameters (IRSP format).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.store.save_parameters(writer)
    }

    /// Reconstruct a model of the given architecture and load trained
    /// parameters into it (architecture-checked by name/shape).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_items: usize,
        num_users: usize,
        config: &CaserConfig,
    ) -> std::io::Result<Self> {
        let mut arch_cfg = config.clone();
        arch_cfg.train.epochs = 0; // build architecture only
        let mut model = Caser::fit(&[], num_items, num_users, &arch_cfg);
        model.store.load_parameters(reader)?;
        Ok(model)
    }
}

impl SequentialScorer for Caser {
    fn num_items(&self) -> usize {
        self.num_items
    }

    /// Scalar scoring through the autograd graph in eval mode — the
    /// reference implementation the tape-free [`Caser::score_batch`]
    /// engine is pinned against.
    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32> {
        let pad = pad_token(self.num_items);
        let window = pad_to(history, self.l_window, pad, PaddingScheme::Pre);
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &self.store, false, 0);
        let logits = self.forward(&ctx, &[user % self.num_users], &[window]).value();
        logits.data()[..self.num_items].to_vec()
    }

    /// Batched tape-free forward: all queries share one convolutional pass
    /// through the value-level `infer_forward` engine, skipping the
    /// autograd graph entirely.  Per row this reproduces [`Caser::score`]
    /// bitwise.
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), histories.len(), "score_batch users/histories length mismatch");
        if histories.is_empty() {
            return Vec::new();
        }
        let pad = pad_token(self.num_items);
        let lw = self.l_window;
        // Pre-padded windows as one flat [B·L] buffer (same layout
        // `pad_to(…, PaddingScheme::Pre)` produces row by row).
        let mut flat = vec![pad; histories.len() * lw];
        for (r, h) in histories.iter().enumerate() {
            let take = h.len().min(lw);
            flat[r * lw + lw - take..(r + 1) * lw].copy_from_slice(&h[h.len() - take..]);
        }
        let mapped: Vec<UserId> = users.iter().map(|&u| u % self.num_users).collect();
        let logits = self.infer_forward(&mapped, &flat);
        let vocab = logits.shape()[1];
        logits.data().chunks(vocab).map(|row| row[..self.num_items].to_vec()).collect()
    }

    /// Caser's fixed-size window makes every configuration incrementable:
    /// the cache rolls embedded rows instead of re-embedding the window.
    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        Some(Box::new(CaserCacheState { window: Vec::new(), rows: Vec::new(), primed: false }))
    }

    /// Roll the embedded window: find the smallest shift aligning the
    /// cached `[L]` token window with the new one (1 per served step, 0 on
    /// a repeat query), move the overlapping rows, and re-embed only the
    /// freshly exposed tail.  The convolutional body then runs on rows
    /// identical to a cold embed, so scores are bitwise-equal to
    /// [`Caser::score`].
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        let Some(cache) = state.as_any_mut().downcast_mut::<CaserCacheState>() else {
            return (self.score(user, history), false);
        };
        let pad = pad_token(self.num_items);
        let l = self.l_window;
        let d = self.cfg_dim;
        let window = pad_to(history, l, pad, PaddingScheme::Pre);
        let shift = if cache.primed {
            (0..=l).find(|&s| cache.window[s..] == window[..l - s]).unwrap_or(l)
        } else {
            l
        };
        let hit = cache.primed && shift < l;
        cache.rows.resize(l * d, 0.0);
        if shift > 0 && shift < l {
            cache.rows.copy_within(shift * d.., 0);
        }
        for (i, &token) in window.iter().enumerate().skip(l - shift) {
            let row = self.item_emb.infer_lookup(&self.store, &[token]);
            cache.rows[i * d..(i + 1) * d].copy_from_slice(row.data());
        }
        cache.window.clear();
        cache.window.extend_from_slice(&window);
        cache.primed = true;
        let e = Tensor::from_vec(cache.rows.clone(), &[1, l, d]);
        let logits = self.infer_forward_embedded(&[user % self.num_users], &e);
        (logits.data()[..self.num_items].to_vec(), hit)
    }

    fn name(&self) -> &'static str {
        "Caser"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_of;

    fn cycle_seqs(n_items: usize, n_seqs: usize, len: usize) -> Vec<SubSeq> {
        (0..n_seqs)
            .map(|s| SubSeq { user: s, items: (0..len).map(|k| (s + k) % n_items).collect() })
            .collect()
    }

    #[test]
    fn learns_cycle_transitions() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = CaserConfig {
            dim: 16,
            l_window: 4,
            heights: vec![2, 3],
            n_h: 8,
            n_v: 2,
            dropout: 0.0,
            train: NeuralTrainConfig { epochs: 8, lr: 3e-3, ..Default::default() },
        };
        let model = Caser::fit(&seqs, 8, 24, &cfg);
        let mut hits = 0;
        for prev in 0..8usize {
            let s = model.score(0, &[(prev + 6) % 8, (prev + 7) % 8, prev]);
            if rank_of(&s, (prev + 1) % 8) <= 2 {
                hits += 1;
            }
        }
        assert!(hits >= 6, "Caser learned only {hits}/8 transitions");
    }

    #[test]
    fn cached_scores_match_cold_bitwise() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = CaserConfig {
            dim: 16,
            l_window: 4,
            heights: vec![2, 3],
            n_h: 8,
            n_v: 2,
            dropout: 0.0,
            train: NeuralTrainConfig { epochs: 2, lr: 3e-3, ..Default::default() },
        };
        let model = Caser::fit(&seqs, 8, 24, &cfg);
        let mut state = model.new_incremental_state().expect("Caser always has a rolling window");
        let session = [0usize, 3, 1, 4, 2, 5, 7, 6, 1, 0];
        for step in 1..=session.len() {
            let history = &session[..step];
            let (scores, hit) = model.score_incremental(0, history, state.as_mut());
            // Step 1 primes; every later step rolls the fixed window by
            // one (no slide-induced misses — the window never grows).
            assert_eq!(hit, step > 1, "step {step}");
            assert_eq!(scores, model.score(0, history), "step {step}");
        }
        assert!(state.resident_bytes() > 0);
        let mutated = [5usize, 2, 0, 6];
        let (scores, hit) = model.score_incremental(0, &mutated, state.as_mut());
        assert!(!hit, "disjoint window must rebuild");
        assert_eq!(scores, model.score(0, &mutated));
    }

    #[test]
    fn short_history_is_padded() {
        let seqs = cycle_seqs(5, 4, 6);
        let cfg = CaserConfig {
            dim: 8,
            l_window: 4,
            heights: vec![2],
            n_h: 4,
            n_v: 2,
            dropout: 0.0,
            train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        };
        let model = Caser::fit(&seqs, 5, 4, &cfg);
        let s = model.score(0, &[1]);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|v| v.is_finite()));
    }
}
