//! Mini-batching helpers for language-model-style next-item training.

use irs_data::split::{pad_to, PaddingScheme, SubSeq};
use irs_data::ItemId;
use rand::seq::SliceRandom;
use rand::Rng;

/// One causal-LM training batch: `inputs[b][t]` predicts `targets[b*T + t]`.
///
/// Inputs are pre-padded to a fixed length; targets use the PAD id as the
/// ignore marker.
#[derive(Debug, Clone)]
pub struct LmBatch {
    /// `[B][T]` input token matrix (contains PAD tokens).
    pub inputs: Vec<Vec<ItemId>>,
    /// Flattened `[B*T]` next-token targets (PAD = ignore).
    pub targets: Vec<ItemId>,
    /// Number of leading PAD tokens per sequence (for key-padding masks).
    pub pad_lens: Vec<usize>,
}

impl LmBatch {
    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.inputs.len()
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.inputs.first().map_or(0, Vec::len)
    }
}

/// Build shuffled causal-LM batches from training subsequences.
///
/// Each subsequence `i₁..i_k` is pre-padded to `max_len + 1`; inputs are
/// positions `0..max_len` and the target at position `t` is the token at
/// `t + 1` (teacher forcing).  Targets at padded positions equal `pad` and
/// are ignored by the loss.
pub fn make_lm_batches<R: Rng + ?Sized>(
    seqs: &[SubSeq],
    max_len: usize,
    pad: ItemId,
    batch_size: usize,
    rng: &mut R,
) -> Vec<LmBatch> {
    assert!(max_len >= 2, "max_len must be at least 2");
    assert!(batch_size >= 1, "batch_size must be positive");
    let mut order: Vec<usize> = (0..seqs.len()).collect();
    order.shuffle(rng);

    let mut batches = Vec::with_capacity(seqs.len().div_ceil(batch_size));
    for chunk in order.chunks(batch_size) {
        let mut inputs = Vec::with_capacity(chunk.len());
        let mut targets = Vec::with_capacity(chunk.len() * max_len);
        let mut pad_lens = Vec::with_capacity(chunk.len());
        for &si in chunk {
            let padded = pad_to(&seqs[si].items, max_len + 1, pad, PaddingScheme::Pre);
            let input: Vec<ItemId> = padded[..max_len].to_vec();
            pad_lens.push(input.iter().take_while(|&&t| t == pad).count());
            targets.extend_from_slice(&padded[1..]);
            inputs.push(input);
        }
        batches.push(LmBatch { inputs, targets, pad_lens });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seqs() -> Vec<SubSeq> {
        vec![
            SubSeq { user: 0, items: vec![1, 2, 3] },
            SubSeq { user: 1, items: vec![4, 5, 6, 7, 8] },
            SubSeq { user: 2, items: vec![9, 1] },
        ]
    }

    #[test]
    fn batches_have_fixed_shape_and_shifted_targets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pad = 99;
        let batches = make_lm_batches(&seqs(), 4, pad, 2, &mut rng);
        assert_eq!(batches.len(), 2);
        for b in &batches {
            assert_eq!(b.seq_len(), 4);
            assert_eq!(b.targets.len(), b.batch_size() * 4);
            for (bi, input) in b.inputs.iter().enumerate() {
                // Every non-pad transition (input[t] -> target[t]) must be a
                // consecutive pair of the original sequence.
                for (t, &x) in input.iter().enumerate().take(4) {
                    let y = b.targets[bi * 4 + t];
                    if x != pad && y != pad {
                        // consecutive in some original sequence
                        let ok = seqs()
                            .iter()
                            .any(|s| s.items.windows(2).any(|w| w[0] == x && w[1] == y));
                        assert!(ok, "({x} -> {y}) is not a real transition");
                    }
                }
            }
        }
    }

    #[test]
    fn long_sequences_keep_most_recent_items() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = vec![SubSeq { user: 0, items: (0..10).collect() }];
        let batches = make_lm_batches(&s, 4, 99, 1, &mut rng);
        // padded to len 5 from the tail: [5,6,7,8,9] -> inputs [5,6,7,8]
        assert_eq!(batches[0].inputs[0], vec![5, 6, 7, 8]);
        assert_eq!(batches[0].targets, vec![6, 7, 8, 9]);
        assert_eq!(batches[0].pad_lens[0], 0);
    }

    #[test]
    fn pad_lens_count_leading_pads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = vec![SubSeq { user: 0, items: vec![5, 6] }];
        let batches = make_lm_batches(&s, 4, 99, 1, &mut rng);
        assert_eq!(batches[0].inputs[0], vec![99, 99, 99, 5]);
        assert_eq!(batches[0].targets, vec![99, 99, 5, 6]);
        assert_eq!(batches[0].pad_lens[0], 3);
    }

    #[test]
    fn all_sequences_appear_exactly_once() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let batches = make_lm_batches(&seqs(), 4, 99, 2, &mut rng);
        let total: usize = batches.iter().map(LmBatch::batch_size).sum();
        assert_eq!(total, 3);
    }
}
