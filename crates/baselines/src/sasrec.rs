//! SASRec — self-attentive sequential recommendation (Kang & McAuley, 2018).

use irs_data::split::{pad_to, PaddingScheme, SubSeq};
use irs_data::{pad_token, ItemId, UserId};
use irs_nn::{
    broadcast_then_add, causal_mask, key_padding_mask, Adam, AttnBias, CacheState, Embedding,
    EncodingLayout, FwdCtx, InferBias, LayerKv, Linear, Optimizer, ParamStore, PositionalEncoding,
    TransformerBlock,
};
use irs_tensor::{Graph, Tensor};
use rand::SeedableRng;

use crate::batch::make_lm_batches;
use crate::{NeuralTrainConfig, SequentialScorer};

/// SASRec hyperparameters.
#[derive(Debug, Clone)]
pub struct SasRecConfig {
    /// Model width.
    pub dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Maximum sequence length.
    pub max_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Inference-time sequence layout: pre-padded window (the default)
    /// or append-only absolute positions, which keeps encoded prefixes
    /// stable across serve steps and enables the per-session K/V cache
    /// ([`SequentialScorer::score_incremental`]).  Training always uses
    /// the padded batch layout.
    pub layout: EncodingLayout,
    /// Shared training options.
    pub train: NeuralTrainConfig,
}

impl Default for SasRecConfig {
    fn default() -> Self {
        SasRecConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            max_len: 24,
            dropout: 0.1,
            layout: EncodingLayout::default(),
            train: NeuralTrainConfig::default(),
        }
    }
}

/// A trained SASRec model.
pub struct SasRec {
    store: ParamStore,
    emb: Embedding,
    pos: PositionalEncoding,
    blocks: Vec<TransformerBlock>,
    out: Linear,
    num_items: usize,
    max_len: usize,
    dim: usize,
    layout: EncodingLayout,
    epoch_losses: Vec<f32>,
}

/// Per-session incremental state for [`SasRec`] in the append-only
/// layout: the encoded window tokens, one [`LayerKv`] per block, and the
/// final-block output row for the newest position.
#[derive(Debug, Clone)]
pub struct SasRecCacheState {
    tokens: Vec<ItemId>,
    layers: Vec<LayerKv>,
    last_out: Vec<f32>,
}

impl CacheState for SasRecCacheState {
    fn resident_bytes(&self) -> usize {
        let mut bytes = self.tokens.capacity() * std::mem::size_of::<ItemId>()
            + self.last_out.capacity() * std::mem::size_of::<f32>();
        for layer in &self.layers {
            bytes += layer.bytes();
        }
        bytes
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl SasRec {
    /// Train on subsequences with the causal LM objective.
    pub fn fit(seqs: &[SubSeq], num_items: usize, config: &SasRecConfig) -> Self {
        let pad = pad_token(num_items);
        let vocab = num_items + 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.train.seed);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "sasrec.emb", vocab, config.dim, &mut rng);
        let pos =
            PositionalEncoding::new(&mut store, "sasrec", config.max_len, config.dim, &mut rng);
        let blocks: Vec<TransformerBlock> = (0..config.layers)
            .map(|l| {
                TransformerBlock::new(
                    &mut store,
                    &format!("sasrec.block{l}"),
                    config.dim,
                    config.heads,
                    config.dropout,
                    &mut rng,
                )
            })
            .collect();
        let out = Linear::new(&mut store, "sasrec.out", config.dim, vocab, true, &mut rng);
        let mut model = SasRec {
            store,
            emb,
            pos,
            blocks,
            out,
            num_items,
            max_len: config.max_len,
            dim: config.dim,
            layout: config.layout,
            epoch_losses: Vec::new(),
        };

        let mut opt = Adam::new(config.train.lr);
        let mut step = 0u64;
        // One tape for the whole run: every step re-records ops but
        // recycles the previous step's value/gradient buffers.
        let graph = Graph::new();
        for epoch in 0..config.train.epochs {
            let batches =
                make_lm_batches(seqs, config.max_len, pad, config.train.batch_size, &mut rng);
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for batch in &batches {
                let loss_val =
                    model.train_step(&graph, batch, pad, step, &mut opt, config.train.clip);
                step += 1;
                epoch_loss += loss_val;
                n += 1;
            }
            let mean_loss = epoch_loss / n.max(1) as f32;
            model.epoch_losses.push(mean_loss);
            if config.train.verbose {
                println!("SASRec epoch {epoch}: loss {mean_loss:.4}");
            }
        }
        model
    }

    /// Mean training loss per epoch, recorded during [`SasRec::fit`] — the
    /// pinned-trajectory determinism tests assert these stay bitwise
    /// stable across refactors of the training engine.
    pub fn training_losses(&self) -> &[f32] {
        &self.epoch_losses
    }

    fn train_step(
        &mut self,
        g: &Graph,
        batch: &crate::batch::LmBatch,
        pad: ItemId,
        step: u64,
        opt: &mut Adam,
        clip: f32,
    ) -> f32 {
        let t = batch.seq_len();
        g.reset();
        let ctx = FwdCtx::new(g, &self.store, true, step);
        let mask = broadcast_then_add(&causal_mask(t), &key_padding_mask(t, &batch.pad_lens));
        let bias = AttnBias::Base(mask);
        let mut h = self.pos.add_to(&ctx, self.emb.lookup_seq(&ctx, &batch.inputs));
        for block in &self.blocks {
            h = block.forward(&ctx, h, &bias);
        }
        let logits = self.out.forward3d(&ctx, h);
        let loss = logits.cross_entropy(&batch.targets, pad);
        let loss_val = loss.item();
        self.store.zero_grad();
        ctx.backprop(loss);
        drop(ctx);
        opt.step_clipped(&mut self.store, clip);
        loss_val
    }

    /// Forward a single pre-padded sequence through the graph path in eval
    /// mode, returning logits at the last position.  This is the reference
    /// implementation `score_batch`'s tape-free engine is tested against.
    fn last_position_logits(&self, padded: &[ItemId], pad: ItemId) -> Vec<f32> {
        let t = padded.len();
        let pad_len = padded.iter().take_while(|&&x| x == pad).count();
        let g = Graph::new();
        let ctx = FwdCtx::new(&g, &self.store, false, 0);
        let mask = broadcast_then_add(&causal_mask(t), &key_padding_mask(t, &[pad_len]));
        let bias = AttnBias::Base(mask);
        let mut h = self.pos.add_to(&ctx, self.emb.lookup_seq(&ctx, &[padded.to_vec()]));
        for block in &self.blocks {
            h = block.forward(&ctx, h, &bias);
        }
        let logits = self.out.forward3d(&ctx, h).select_step(t - 1).value();
        logits.data()[..self.num_items].to_vec()
    }

    /// Tape-free forward of a windowed history in the append-only layout:
    /// tokens sit at absolute positions `0..c` with no padding and a plain
    /// causal mask.  At a full window this performs the same contraction as
    /// the pre-padded path (whose padded columns soften to exactly-zero
    /// attention weights the kernels skip), so the two layouts are
    /// bitwise-identical there — pinned by
    /// `append_layout_matches_pre_padded_at_full_window`.
    fn append_logits(&self, toks: &[ItemId]) -> Vec<f32> {
        let c = toks.len();
        let d = self.dim;
        let mut h = self.emb.infer_lookup(&self.store, toks);
        for (i, row) in h.data_mut().chunks_mut(d).enumerate() {
            self.pos.infer_add_row_in_place(&self.store, row, i);
        }
        h.reshape_in_place(&[1, c, d]);
        let bias = InferBias { base: causal_mask(c), scaled_column: None };
        let last = match self.blocks.split_last() {
            Some((final_block, earlier)) => {
                for block in earlier {
                    h = block.infer(&self.store, &h, &bias);
                }
                final_block.infer_last_query(&self.store, &h, &bias, c - 1)
            }
            None => h.select_step(c - 1),
        };
        let logits = self.out.infer(&self.store, &last);
        logits.data()[..self.num_items].to_vec()
    }

    /// Encode one appended token through every block, pushing its K/V rows
    /// into the per-session cache.
    fn cache_step(&self, cache: &mut SasRecCacheState, token: ItemId) {
        let e = self.emb.infer_lookup(&self.store, &[token]);
        let mut x = e.data().to_vec();
        self.pos.infer_add_row_in_place(&self.store, &mut x, cache.tokens.len());
        for (block, layer) in self.blocks.iter().zip(cache.layers.iter_mut()) {
            let r = block.infer_append_row(&self.store, &x, layer, 0.0, None, None);
            layer.push(&r.k, &r.v);
            x = r.out.data().to_vec();
        }
        cache.tokens.push(token);
        cache.last_out = x;
    }

    /// Serialise the trained parameters (IRSP format).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.store.save_parameters(writer)
    }

    /// Reconstruct a model of the given architecture and load trained
    /// parameters into it (architecture-checked by name/shape).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_items: usize,
        config: &SasRecConfig,
    ) -> std::io::Result<Self> {
        let mut arch_cfg = config.clone();
        arch_cfg.train.epochs = 0; // build architecture only
        let mut model = SasRec::fit(&[], num_items, &arch_cfg);
        model.store.load_parameters(reader)?;
        Ok(model)
    }
}

impl SequentialScorer for SasRec {
    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score(&self, _user: UserId, history: &[ItemId]) -> Vec<f32> {
        if history.is_empty() {
            return vec![0.0; self.num_items];
        }
        if self.layout == EncodingLayout::AppendOnly {
            let start = crate::hopping_window_start(history.len(), self.max_len);
            return self.append_logits(&history[start..]);
        }
        let pad = pad_token(self.num_items);
        let padded = pad_to(history, self.max_len, pad, PaddingScheme::Pre);
        self.last_position_logits(&padded, pad)
    }

    /// Batched tape-free forward: all queries share one padded `[B, T]`
    /// pass through the inference engine, with the final block evaluated
    /// at the last position only.  Per row this reproduces
    /// [`SasRec::score`] exactly.
    fn score_batch(&self, users: &[UserId], histories: &[&[ItemId]]) -> Vec<Vec<f32>> {
        assert_eq!(users.len(), histories.len(), "score_batch users/histories length mismatch");
        if self.layout == EncodingLayout::AppendOnly {
            // Rows have unequal lengths in the append layout (no padding to
            // equalise them), so the batch is a loop over the scalar path.
            return users.iter().zip(histories).map(|(&u, &h)| self.score(u, h)).collect();
        }
        let pad = pad_token(self.num_items);
        // Empty histories score zero (no signal); only real rows enter the
        // batched forward.
        let live: Vec<usize> = (0..histories.len()).filter(|&i| !histories[i].is_empty()).collect();
        let mut out = vec![vec![0.0; self.num_items]; histories.len()];
        if live.is_empty() {
            return out;
        }
        let t = self.max_len;
        let mut padded = Vec::with_capacity(live.len());
        let mut pad_lens = Vec::with_capacity(live.len());
        for &i in &live {
            let row = pad_to(histories[i], t, pad, PaddingScheme::Pre);
            pad_lens.push(row.iter().take_while(|&&x| x == pad).count());
            padded.push(row);
        }
        let bias = InferBias {
            base: broadcast_then_add(&causal_mask(t), &key_padding_mask(t, &pad_lens)),
            scaled_column: None,
        };
        let mut h = self.emb.infer_lookup_seq(&self.store, &padded);
        self.pos.infer_add_in_place(&self.store, &mut h);
        let last = match self.blocks.split_last() {
            Some((final_block, earlier)) => {
                for block in earlier {
                    h = block.infer(&self.store, &h, &bias);
                }
                final_block.infer_last_query(&self.store, &h, &bias, t - 1)
            }
            None => h.select_step(t - 1),
        };
        let logits = self.out.infer(&self.store, &last);
        let vocab = self.num_items + 1;
        for (&i, row) in live.iter().zip(logits.data().chunks(vocab)) {
            out[i] = row[..self.num_items].to_vec();
        }
        out
    }

    fn new_incremental_state(&self) -> Option<Box<dyn CacheState>> {
        if self.layout != EncodingLayout::AppendOnly {
            return None;
        }
        Some(Box::new(SasRecCacheState {
            tokens: Vec::new(),
            layers: (0..self.blocks.len()).map(|_| LayerKv::new(self.dim)).collect(),
            last_out: Vec::new(),
        }))
    }

    /// Reuse the session's encoded prefix: a hit encodes only the new
    /// suffix tokens (one per-layer K/V append each); a prefix mismatch
    /// clears the state and replays the bounded window.  The window
    /// advances in hops ([`crate::hopping_window_start`]), so sessions
    /// that outgrow `max_len` keep hitting between hops instead of
    /// rebuilding every step.  Scores are bitwise-identical to
    /// [`SasRec::score`] in the append layout.
    fn score_incremental(
        &self,
        user: UserId,
        history: &[ItemId],
        state: &mut dyn CacheState,
    ) -> (Vec<f32>, bool) {
        if self.layout != EncodingLayout::AppendOnly {
            return (self.score(user, history), false);
        }
        let Some(cache) = state.as_any_mut().downcast_mut::<SasRecCacheState>() else {
            return (self.score(user, history), false);
        };
        if history.is_empty() {
            return (vec![0.0; self.num_items], false);
        }
        let start = crate::hopping_window_start(history.len(), self.max_len);
        let toks = &history[start..];
        let hit = !cache.tokens.is_empty()
            && toks.len() >= cache.tokens.len()
            && toks[..cache.tokens.len()] == cache.tokens[..];
        if !hit {
            cache.tokens.clear();
            for layer in &mut cache.layers {
                layer.clear();
            }
        }
        let encoded = cache.tokens.len();
        for &tok in &toks[encoded..] {
            self.cache_step(cache, tok);
        }
        let last = Tensor::from_vec(cache.last_out.clone(), &[1, self.dim]);
        let logits = self.out.infer(&self.store, &last);
        (logits.data()[..self.num_items].to_vec(), hit)
    }

    fn name(&self) -> &'static str {
        "SASRec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_of;

    fn cycle_seqs(n_items: usize, n_seqs: usize, len: usize) -> Vec<SubSeq> {
        (0..n_seqs)
            .map(|s| SubSeq { user: s, items: (0..len).map(|k| (s + k) % n_items).collect() })
            .collect()
    }

    #[test]
    fn learns_cycle_transitions() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = SasRecConfig {
            dim: 16,
            layers: 1,
            heads: 2,
            max_len: 10,
            dropout: 0.0,
            layout: EncodingLayout::PrePadded,
            train: NeuralTrainConfig { epochs: 10, lr: 3e-3, ..Default::default() },
        };
        let model = SasRec::fit(&seqs, 8, &cfg);
        let mut hits = 0;
        for prev in 0..8usize {
            let s = model.score(0, &[(prev + 7) % 8, prev]);
            if rank_of(&s, (prev + 1) % 8) <= 2 {
                hits += 1;
            }
        }
        assert!(hits >= 6, "SASRec learned only {hits}/8 transitions");
    }

    #[test]
    fn score_length_and_empty_history() {
        let seqs = cycle_seqs(5, 4, 6);
        let cfg = SasRecConfig {
            dim: 8,
            layers: 1,
            heads: 1,
            max_len: 6,
            dropout: 0.0,
            layout: EncodingLayout::PrePadded,
            train: NeuralTrainConfig { epochs: 1, ..Default::default() },
        };
        let model = SasRec::fit(&seqs, 5, &cfg);
        assert_eq!(model.score(0, &[1, 2]).len(), 5);
        assert_eq!(model.score(0, &[]), vec![0.0; 5]);
    }

    #[test]
    fn append_layout_matches_pre_padded_at_full_window() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = SasRecConfig {
            dim: 16,
            layers: 2,
            heads: 2,
            max_len: 6,
            dropout: 0.0,
            layout: EncodingLayout::PrePadded,
            train: NeuralTrainConfig { epochs: 2, lr: 3e-3, ..Default::default() },
        };
        let mut model = SasRec::fit(&seqs, 8, &cfg);
        assert!(model.new_incremental_state().is_none(), "no cache in the pre-padded layout");
        let history: Vec<ItemId> = vec![0, 1, 2, 3, 4, 5];
        let pre = model.score(0, &history);
        model.layout = EncodingLayout::AppendOnly;
        let append = model.score(0, &history);
        assert_eq!(pre, append, "full-window append layout must be bitwise-identical");
    }

    #[test]
    fn cached_scores_match_cold_append_bitwise() {
        let seqs = cycle_seqs(8, 24, 10);
        let cfg = SasRecConfig {
            dim: 16,
            layers: 2,
            heads: 2,
            max_len: 6,
            dropout: 0.0,
            layout: EncodingLayout::AppendOnly,
            train: NeuralTrainConfig { epochs: 2, lr: 3e-3, ..Default::default() },
        };
        let model = SasRec::fit(&seqs, 8, &cfg);
        let mut state = model.new_incremental_state().expect("append layout has a cache");
        let session = [0usize, 3, 1, 4, 2, 5, 7, 6, 1, 0, 4, 3, 6, 2];
        let mut long_session_hits = 0;
        for step in 1..=session.len() {
            let history = &session[..step];
            let (scores, hit) = model.score_incremental(0, history, state.as_mut());
            // Step 1 primes; afterwards the hopping window keeps the
            // cached prefix valid on every step that doesn't hop.
            let expect = step > 1
                && crate::hopping_window_start(step, cfg.max_len)
                    == crate::hopping_window_start(step - 1, cfg.max_len);
            assert_eq!(hit, expect, "step {step}");
            if hit && step > cfg.max_len {
                long_session_hits += 1;
            }
            assert_eq!(scores, model.score(0, history), "step {step}");
        }
        assert!(
            long_session_hits > 0,
            "sessions outgrowing max_len must keep cache hits between hops"
        );
        assert!(state.resident_bytes() > 0);
        let mutated = [5usize, 2, 0];
        let (scores, hit) = model.score_incremental(0, &mutated, state.as_mut());
        assert!(!hit, "changed prefix must rebuild");
        assert_eq!(scores, model.score(0, &mutated));
    }
}
