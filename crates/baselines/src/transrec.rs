//! TransRec — translation-based sequential recommendation
//! (He, Kang & McAuley, 2017).
//!
//! Items live in a shared space; a user is a translation vector.  The score
//! of item `j` following item `i` for user `u` is
//! `β_j − ‖γ_i + t + t_u − γ_j‖²`, trained with the BPR pairwise objective
//! via hand-derived SGD.

use irs_data::{Dataset, ItemId, UserId};
use rand::{Rng, SeedableRng};

use crate::SequentialScorer;

/// TransRec hyperparameters.
#[derive(Debug, Clone)]
pub struct TransRecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularisation.
    pub reg: f32,
    /// Training epochs (each consumes every consecutive pair once).
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransRecConfig {
    fn default() -> Self {
        TransRecConfig { dim: 24, lr: 0.05, reg: 0.01, epochs: 8, seed: 0x7a2 }
    }
}

/// Trained TransRec model.
#[derive(Debug, Clone)]
pub struct TransRec {
    dim: usize,
    num_items: usize,
    /// Item embeddings γ, `[num_items, dim]`.
    item_emb: Vec<f32>,
    /// Item biases β.
    item_bias: Vec<f32>,
    /// Global translation t.
    global_t: Vec<f32>,
    /// Per-user translations t_u, `[num_users, dim]`.
    user_t: Vec<f32>,
}

impl TransRec {
    /// Train on all consecutive `(prev → next)` transitions.
    pub fn fit(dataset: &Dataset, config: &TransRecConfig) -> Self {
        let (u_n, i_n, d) = (dataset.num_users, dataset.num_items, config.dim);
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut m = TransRec {
            dim: d,
            num_items: i_n,
            item_emb: (0..i_n * d).map(|_| (rng.random::<f32>() - 0.5) * 0.1).collect(),
            item_bias: vec![0.0; i_n],
            global_t: vec![0.0; d],
            user_t: vec![0.0; u_n * d],
        };

        let mut transitions: Vec<(UserId, ItemId, ItemId)> = Vec::new();
        for (u, seq) in dataset.sequences.iter().enumerate() {
            for w in seq.windows(2) {
                transitions.push((u, w[0], w[1]));
            }
        }

        for _ in 0..config.epochs {
            for &(u, prev, pos) in &transitions {
                let neg = {
                    let mut j = rng.random_range(0..i_n);
                    let mut guard = 0;
                    while (j == pos || j == prev) && guard < 20 {
                        j = rng.random_range(0..i_n);
                        guard += 1;
                    }
                    j
                };
                m.sgd_step(u, prev, pos, neg, config.lr, config.reg);
            }
        }
        m
    }

    /// Score of `next` following `prev` for `user`.
    fn pair_score(&self, user: UserId, prev: ItemId, next: ItemId) -> f32 {
        let d = self.dim;
        let gi = &self.item_emb[prev * d..(prev + 1) * d];
        let gj = &self.item_emb[next * d..(next + 1) * d];
        let tu = &self.user_t[user * d..(user + 1) * d];
        let mut sq = 0.0;
        for k in 0..d {
            let diff = gi[k] + self.global_t[k] + tu[k] - gj[k];
            sq += diff * diff;
        }
        self.item_bias[next] - sq
    }

    fn sgd_step(&mut self, u: UserId, prev: ItemId, pos: ItemId, neg: ItemId, lr: f32, reg: f32) {
        let d = self.dim;
        let x = self.pair_score(u, prev, pos) - self.pair_score(u, prev, neg);
        let g = 1.0 / (1.0 + (-x).exp()) - 1.0; // d(−lnσ)/dx

        // Gradients of s_j = β_j − ‖v − γ_j‖² with v = γ_i + t + t_u:
        //   ∂s/∂β_j = 1; ∂s/∂γ_j = 2(v − γ_j); ∂s/∂v = −2(v − γ_j).
        let mut dv = vec![0.0f32; d]; // accumulate ∂x/∂v
        {
            let compute_diff = |m: &TransRec, j: ItemId| -> Vec<f32> {
                let gi = &m.item_emb[prev * d..(prev + 1) * d];
                let gj = &m.item_emb[j * d..(j + 1) * d];
                let tu = &m.user_t[u * d..(u + 1) * d];
                (0..d).map(|k| gi[k] + m.global_t[k] + tu[k] - gj[k]).collect()
            };
            let diff_pos = compute_diff(self, pos);
            let diff_neg = compute_diff(self, neg);

            self.item_bias[pos] -= lr * (g + reg * self.item_bias[pos]);
            self.item_bias[neg] -= lr * (-g + reg * self.item_bias[neg]);
            for k in 0..d {
                // ∂x/∂γ_pos = 2·diff_pos ; ∂x/∂γ_neg = −(2·diff_neg)·(−1) = ... sign care:
                // x = s_pos − s_neg.
                let gp = 2.0 * diff_pos[k]; // ∂s_pos/∂γ_pos
                let gn = -2.0 * diff_neg[k]; // ∂(−s_neg)/∂γ_neg = +2·diff_neg... see below
                                             // s_neg contributes −s_neg to x: ∂x/∂γ_neg = −∂s_neg/∂γ_neg = −2·diff_neg
                let dpos = g * gp;
                let dneg = g * gn;
                let ip = pos * d + k;
                let inn = neg * d + k;
                self.item_emb[ip] -= lr * (dpos + reg * self.item_emb[ip]);
                self.item_emb[inn] -= lr * (dneg + reg * self.item_emb[inn]);
                // ∂x/∂v = −2·diff_pos + 2·diff_neg
                dv[k] = g * (-2.0 * diff_pos[k] + 2.0 * diff_neg[k]);
            }
        }
        for (k, &dvk) in dv.iter().enumerate() {
            let ipk = prev * d + k;
            self.item_emb[ipk] -= lr * (dvk + reg * self.item_emb[ipk]);
            self.global_t[k] -= lr * dvk;
            let iu = u * d + k;
            self.user_t[iu] -= lr * (dvk + reg * self.user_t[iu]);
        }
    }

    /// Serialise the embeddings, biases and translations (IRSP format).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        use irs_tensor::Tensor;
        let d = self.dim;
        let num_users = self.user_t.len() / d.max(1);
        let mut store = irs_nn::ParamStore::new();
        store.add("transrec.item", Tensor::from_vec(self.item_emb.clone(), &[self.num_items, d]));
        store.add("transrec.bias", Tensor::from_vec(self.item_bias.clone(), &[self.num_items]));
        store.add("transrec.t", Tensor::from_vec(self.global_t.clone(), &[d]));
        store.add("transrec.user_t", Tensor::from_vec(self.user_t.clone(), &[num_users, d]));
        store.save_parameters(writer)
    }

    /// Load a model saved by [`TransRec::save`].  Counts and
    /// dimensionality must match the saved shapes (shape-checked).
    pub fn load<R: std::io::Read>(
        reader: R,
        num_users: usize,
        num_items: usize,
        dim: usize,
    ) -> std::io::Result<Self> {
        use irs_tensor::Tensor;
        let mut store = irs_nn::ParamStore::new();
        let i = store.add("transrec.item", Tensor::zeros(&[num_items, dim]));
        let b = store.add("transrec.bias", Tensor::zeros(&[num_items]));
        let t = store.add("transrec.t", Tensor::zeros(&[dim]));
        let ut = store.add("transrec.user_t", Tensor::zeros(&[num_users, dim]));
        store.load_parameters(reader)?;
        Ok(TransRec {
            dim,
            num_items,
            item_emb: store.value(i).data().to_vec(),
            item_bias: store.value(b).data().to_vec(),
            global_t: store.value(t).data().to_vec(),
            user_t: store.value(ut).data().to_vec(),
        })
    }
}

impl SequentialScorer for TransRec {
    fn num_items(&self) -> usize {
        self.num_items
    }

    fn score(&self, user: UserId, history: &[ItemId]) -> Vec<f32> {
        match history.last() {
            Some(&prev) => (0..self.num_items).map(|j| self.pair_score(user, prev, j)).collect(),
            // No history: fall back to bias-only scores.
            None => self.item_bias.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "TransRec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_of;

    /// A strict *chain* 0→1→2→…→7: a pure cycle is not representable by an
    /// additive translation (translations around a loop must sum to zero),
    /// but a chain embeds on a line with a constant translation vector.
    fn chain_dataset() -> Dataset {
        let n = 8;
        let mut sequences = Vec::new();
        for u in 0..32 {
            let start = u % (n - 3);
            let seq: Vec<ItemId> = (start..n).collect();
            sequences.push(seq);
        }
        Dataset {
            name: "chain".into(),
            num_users: 32,
            num_items: n,
            sequences,
            genres: vec![vec![0]; n],
            genre_names: vec!["g".into()],
            item_names: (0..n).map(|i| format!("i{i}")).collect(),
        }
    }

    #[test]
    fn learns_successor_structure() {
        let d = chain_dataset();
        let model = TransRec::fit(&d, &TransRecConfig { epochs: 20, ..Default::default() });
        let mut good = 0;
        for prev in 0..7usize {
            let s = model.score(0, &[prev]);
            let successor = prev + 1;
            if rank_of(&s, successor) <= 3 {
                good += 1;
            }
        }
        assert!(good >= 5, "successor ranked top-3 for only {good}/7 items");
    }

    #[test]
    fn empty_history_uses_bias() {
        let d = chain_dataset();
        let model = TransRec::fit(&d, &TransRecConfig { epochs: 1, ..Default::default() });
        let s = model.score(0, &[]);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn deterministic_training() {
        let d = chain_dataset();
        let cfg = TransRecConfig { epochs: 2, ..Default::default() };
        let a = TransRec::fit(&d, &cfg);
        let b = TransRec::fit(&d, &cfg);
        assert_eq!(a.score(1, &[3]), b.score(1, &[3]));
    }
}
