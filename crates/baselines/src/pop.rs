//! POP — recommend by global popularity.

use irs_data::{Dataset, ItemId, UserId};

use crate::SequentialScorer;

/// Popularity baseline: scores are `ln(1 + count)` of training
/// interactions, independent of the user and history.
#[derive(Debug, Clone)]
pub struct Pop {
    scores: Vec<f32>,
}

impl Pop {
    /// Fit from raw per-item counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        Pop { scores: counts.iter().map(|&c| (1.0 + c as f32).ln()).collect() }
    }

    /// Fit from a dataset's training sequences.
    pub fn fit(dataset: &Dataset) -> Self {
        Self::from_counts(&dataset.item_counts())
    }
}

impl SequentialScorer for Pop {
    fn num_items(&self) -> usize {
        self.scores.len()
    }

    fn score(&self, _user: UserId, _history: &[ItemId]) -> Vec<f32> {
        self.scores.clone()
    }

    fn name(&self) -> &'static str {
        "POP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_popular_item_scores_highest() {
        let pop = Pop::from_counts(&[3, 10, 1]);
        let s = pop.score(0, &[2]);
        assert!(s[1] > s[0] && s[0] > s[2]);
        assert_eq!(crate::rank_of(&s, 1), 1);
    }

    #[test]
    fn history_is_ignored() {
        let pop = Pop::from_counts(&[1, 2, 3]);
        assert_eq!(pop.score(0, &[]), pop.score(5, &[0, 1, 2]));
    }
}
