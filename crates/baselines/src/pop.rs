//! POP — recommend by global popularity.

use irs_data::{Dataset, ItemId, UserId};

use crate::SequentialScorer;

/// Popularity baseline: scores are `ln(1 + count)` of training
/// interactions, independent of the user and history.
#[derive(Debug, Clone)]
pub struct Pop {
    scores: Vec<f32>,
}

impl Pop {
    /// Fit from raw per-item counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        Pop { scores: counts.iter().map(|&c| (1.0 + c as f32).ln()).collect() }
    }

    /// Fit from a dataset's training sequences.
    pub fn fit(dataset: &Dataset) -> Self {
        Self::from_counts(&dataset.item_counts())
    }

    /// Serialise the popularity scores (IRSP format, one `pop.scores`
    /// tensor — the same container the neural families use, so every
    /// scorer snapshot round-trips through one loader).
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        let mut store = irs_nn::ParamStore::new();
        store.add(
            "pop.scores",
            irs_tensor::Tensor::from_vec(self.scores.clone(), &[self.scores.len()]),
        );
        store.save_parameters(writer)
    }

    /// Load scores saved by [`Pop::save`]; `num_items` must match
    /// (shape-checked like every IRSP load).
    pub fn load<R: std::io::Read>(reader: R, num_items: usize) -> std::io::Result<Self> {
        let mut store = irs_nn::ParamStore::new();
        let id = store.add("pop.scores", irs_tensor::Tensor::zeros(&[num_items]));
        store.load_parameters(reader)?;
        Ok(Pop { scores: store.value(id).data().to_vec() })
    }
}

impl SequentialScorer for Pop {
    fn num_items(&self) -> usize {
        self.scores.len()
    }

    fn score(&self, _user: UserId, _history: &[ItemId]) -> Vec<f32> {
        self.scores.clone()
    }

    fn score_into(&self, _user: UserId, _history: &[ItemId], out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.scores);
    }

    fn name(&self) -> &'static str {
        "POP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_popular_item_scores_highest() {
        let pop = Pop::from_counts(&[3, 10, 1]);
        let s = pop.score(0, &[2]);
        assert!(s[1] > s[0] && s[0] > s[2]);
        assert_eq!(crate::rank_of(&s, 1), 1);
    }

    #[test]
    fn history_is_ignored() {
        let pop = Pop::from_counts(&[1, 2, 3]);
        assert_eq!(pop.score(0, &[]), pop.score(5, &[0, 1, 2]));
    }
}
