//! IRSP round-trip pins for every scorer family: save → load →
//! `score_batch` must be *bitwise* equal to the original model.
//!
//! This is the contract the serving subsystem's snapshot hot-swap relies
//! on: a model written by `save` and re-loaded through the
//! architecture-checked `ParamStore::load_parameters` path must be
//! indistinguishable from the in-memory original, including through the
//! tape-free batched inference engines (GRU4Rec's fused-gate recurrence,
//! Caser's value-level conv pass, the transformers' single-query final
//! block).

use irs_baselines::{
    Bert4Rec, Bert4RecConfig, BprConfig, BprMf, Caser, CaserConfig, Gru4Rec, Gru4RecConfig,
    NeuralTrainConfig, Pop, SasRec, SasRecConfig, SequentialScorer, TransRec, TransRecConfig,
};
use irs_data::split::{split_dataset, DataSplit, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::{Dataset, ItemId};

fn world() -> (Dataset, DataSplit) {
    let dataset = generate(&SynthConfig::tiny(0x1259)).dataset;
    let split = split_dataset(&dataset, &SplitConfig::small());
    (dataset, split)
}

fn train_cfg() -> NeuralTrainConfig {
    NeuralTrainConfig { epochs: 1, ..Default::default() }
}

/// Queries covering the shapes that matter: empty history, short, long.
fn queries(num_items: usize) -> (Vec<usize>, Vec<Vec<ItemId>>) {
    let users = vec![0usize, 1, 2, 3];
    let histories = vec![
        vec![],
        vec![1 % num_items],
        vec![2 % num_items, 5 % num_items, 7 % num_items],
        (0..12).map(|i| (i * 3) % num_items).collect(),
    ];
    (users, histories)
}

/// Assert per-row bitwise equality between two `score_batch` answers.
fn assert_scores_bitwise_equal(name: &str, a: &[Vec<f32>], b: &[Vec<f32>]) {
    assert_eq!(a.len(), b.len(), "{name}: row count changed across round-trip");
    for (row, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{name}: row {row} length changed");
        for (col, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: score[{row}][{col}] diverged after round-trip: {x} vs {y}"
            );
        }
    }
}

fn round_trip<S: SequentialScorer>(original: &S, restored: &S) {
    let (users, histories) = queries(original.num_items());
    let refs: Vec<&[ItemId]> = histories.iter().map(Vec::as_slice).collect();
    let before = original.score_batch(&users, &refs);
    let after = restored.score_batch(&users, &refs);
    assert_scores_bitwise_equal(original.name(), &before, &after);
}

#[test]
fn pop_round_trips_bitwise() {
    let (dataset, _) = world();
    let model = Pop::fit(&dataset);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = Pop::load(&bytes[..], dataset.num_items).unwrap();
    round_trip(&model, &restored);
    // Architecture check: a different catalogue size must be rejected.
    assert!(Pop::load(&bytes[..], dataset.num_items + 1).is_err());
}

#[test]
fn bpr_round_trips_bitwise() {
    let (dataset, _) = world();
    let cfg = BprConfig { dim: 8, epochs: 1, ..Default::default() };
    let model = BprMf::fit(&dataset, &cfg);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = BprMf::load(&bytes[..], dataset.num_users, dataset.num_items, 8).unwrap();
    round_trip(&model, &restored);
    assert!(BprMf::load(&bytes[..], dataset.num_users, dataset.num_items, 9).is_err());
}

#[test]
fn transrec_round_trips_bitwise() {
    let (dataset, _) = world();
    let cfg = TransRecConfig { dim: 8, epochs: 1, ..Default::default() };
    let model = TransRec::fit(&dataset, &cfg);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = TransRec::load(&bytes[..], dataset.num_users, dataset.num_items, 8).unwrap();
    round_trip(&model, &restored);
    assert!(TransRec::load(&bytes[..], dataset.num_users + 1, dataset.num_items, 8).is_err());
}

#[test]
fn gru4rec_round_trips_bitwise_through_infer_path() {
    let (dataset, split) = world();
    let cfg = Gru4RecConfig { dim: 8, hidden: 8, max_len: 8, train: train_cfg() };
    let model = Gru4Rec::fit(&split.train, dataset.num_items, &cfg);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = Gru4Rec::load(&bytes[..], dataset.num_items, &cfg).unwrap();
    round_trip(&model, &restored);
    // Wrong architecture: different hidden width.
    let wrong = Gru4RecConfig { hidden: 12, ..cfg };
    assert!(Gru4Rec::load(&bytes[..], dataset.num_items, &wrong).is_err());
}

#[test]
fn caser_round_trips_bitwise_through_infer_path() {
    let (dataset, split) = world();
    let cfg = CaserConfig {
        dim: 8,
        l_window: 4,
        heights: vec![2, 3],
        n_h: 4,
        n_v: 2,
        dropout: 0.0,
        train: train_cfg(),
    };
    let model = Caser::fit(&split.train, dataset.num_items, dataset.num_users, &cfg);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = Caser::load(&bytes[..], dataset.num_items, dataset.num_users, &cfg).unwrap();
    round_trip(&model, &restored);
    let wrong = CaserConfig { n_h: 6, ..cfg };
    assert!(Caser::load(&bytes[..], dataset.num_items, dataset.num_users, &wrong).is_err());
}

#[test]
fn sasrec_round_trips_bitwise() {
    let (dataset, split) = world();
    let cfg = SasRecConfig {
        dim: 8,
        layers: 2,
        heads: 2,
        max_len: 8,
        dropout: 0.0,
        layout: Default::default(),
        train: train_cfg(),
    };
    let model = SasRec::fit(&split.train, dataset.num_items, &cfg);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = SasRec::load(&bytes[..], dataset.num_items, &cfg).unwrap();
    round_trip(&model, &restored);
    let wrong = SasRecConfig { layers: 1, ..cfg };
    assert!(SasRec::load(&bytes[..], dataset.num_items, &wrong).is_err());
}

#[test]
fn bert4rec_round_trips_bitwise() {
    let (dataset, split) = world();
    let cfg = Bert4RecConfig {
        dim: 8,
        layers: 2,
        heads: 2,
        max_len: 8,
        dropout: 0.0,
        mask_prob: 0.3,
        train: train_cfg(),
    };
    let model = Bert4Rec::fit(&split.train, dataset.num_items, &cfg);
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();
    let restored = Bert4Rec::load(&bytes[..], dataset.num_items, &cfg).unwrap();
    round_trip(&model, &restored);
    let wrong = Bert4RecConfig { dim: 16, ..cfg };
    assert!(Bert4Rec::load(&bytes[..], dataset.num_items, &wrong).is_err());
}
