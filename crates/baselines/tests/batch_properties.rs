//! Property tests pinning the batching contract: for every
//! [`SequentialScorer`] implementation, `score_batch` must answer each
//! query exactly as per-item `score` does — including empty histories,
//! singleton batches, and batches mixing empty and non-empty rows.
//!
//! For SASRec, Bert4Rec, GRU4Rec and Caser this compares two genuinely
//! different engines: the scalar autograd-graph path (the reference) vs
//! the tape-free batched inference path (fused-gate recurrence for
//! GRU4Rec, value-level convolutional pass for Caser, single-query final
//! block for the transformers).  For GRU4Rec it additionally checks that
//! post-padding ragged rows leaves each row's recurrence untouched; for
//! the rest it pins the default loop and the shared batched forward.

use std::sync::OnceLock;

use irs_baselines::{
    Bert4Rec, Bert4RecConfig, BprConfig, BprMf, Caser, CaserConfig, Gru4Rec, Gru4RecConfig,
    NeuralTrainConfig, Pop, SasRec, SasRecConfig, SequentialScorer, TransRec, TransRecConfig,
};
use irs_data::split::{split_dataset, SplitConfig};
use irs_data::synth::{generate, SynthConfig};
use irs_data::ItemId;
use proptest::prelude::*;

const NUM_ITEMS_BOUND: usize = 60; // SynthConfig::tiny catalogue size

struct Models {
    num_items: usize,
    scorers: Vec<Box<dyn SequentialScorer + Send + Sync>>,
}

fn models() -> &'static Models {
    static MODELS: OnceLock<Models> = OnceLock::new();
    MODELS.get_or_init(|| {
        let dataset = generate(&SynthConfig::tiny(0x6a7c)).dataset;
        let split = split_dataset(&dataset, &SplitConfig::small());
        let n = dataset.num_items;
        let train = NeuralTrainConfig { epochs: 1, ..Default::default() };
        let scorers: Vec<Box<dyn SequentialScorer + Send + Sync>> = vec![
            Box::new(Pop::fit(&dataset)),
            Box::new(BprMf::fit(&dataset, &BprConfig { dim: 8, epochs: 1, ..Default::default() })),
            Box::new(TransRec::fit(
                &dataset,
                &TransRecConfig { dim: 8, epochs: 1, ..Default::default() },
            )),
            Box::new(Gru4Rec::fit(
                &split.train,
                n,
                &Gru4RecConfig { dim: 8, hidden: 8, max_len: 8, train: train.clone() },
            )),
            Box::new(Caser::fit(
                &split.train,
                n,
                dataset.num_users,
                &CaserConfig {
                    dim: 8,
                    l_window: 4,
                    heights: vec![2, 3],
                    n_h: 4,
                    n_v: 2,
                    dropout: 0.0,
                    train: train.clone(),
                },
            )),
            Box::new(SasRec::fit(
                &split.train,
                n,
                &SasRecConfig {
                    dim: 8,
                    layers: 2,
                    heads: 2,
                    max_len: 8,
                    dropout: 0.0,
                    layout: Default::default(),
                    train: train.clone(),
                },
            )),
            Box::new(Bert4Rec::fit(
                &split.train,
                n,
                &Bert4RecConfig {
                    dim: 8,
                    layers: 2,
                    heads: 2,
                    max_len: 8,
                    dropout: 0.0,
                    mask_prob: 0.3,
                    train,
                },
            )),
        ];
        Models { num_items: n, scorers }
    })
}

/// Strategy: a batch of (user, history) queries with ragged lengths,
/// including empty histories.
fn batch() -> impl Strategy<Value = Vec<(usize, Vec<ItemId>)>> {
    proptest::collection::vec(
        (0usize..40, proptest::collection::vec(0usize..NUM_ITEMS_BOUND, 0..12)),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `score_batch` ≡ per-item `score` for every model, bitwise.
    #[test]
    fn score_batch_equals_per_item_score(queries in batch()) {
        let m = models();
        let clipped: Vec<(usize, Vec<ItemId>)> = queries
            .iter()
            .map(|(u, h)| (*u, h.iter().map(|&i| i % m.num_items).collect()))
            .collect();
        let users: Vec<usize> = clipped.iter().map(|(u, _)| *u).collect();
        let histories: Vec<&[ItemId]> = clipped.iter().map(|(_, h)| h.as_slice()).collect();
        for scorer in &m.scorers {
            let batched = scorer.score_batch(&users, &histories);
            prop_assert_eq!(batched.len(), users.len(), "{}: one row per query", scorer.name());
            for ((&u, &h), row) in users.iter().zip(&histories).zip(&batched) {
                let scalar = scorer.score(u, h);
                prop_assert_eq!(
                    row.len(),
                    scalar.len(),
                    "{}: score length mismatch", scorer.name()
                );
                for (idx, (a, b)) in row.iter().zip(&scalar).enumerate() {
                    prop_assert!(
                        (a - b).abs() <= 1e-4 * b.abs().max(1.0) && a.to_bits() == b.to_bits(),
                        "{}: item {idx} batched {a} vs scalar {b} (history len {})",
                        scorer.name(),
                        h.len()
                    );
                }
            }
        }
    }

    /// Singleton batches are the degenerate case of the batch API.
    #[test]
    fn singleton_batch_equals_score(user in 0usize..40, history in proptest::collection::vec(0usize..NUM_ITEMS_BOUND, 0..12)) {
        let m = models();
        let history: Vec<ItemId> = history.iter().map(|&i| i % m.num_items).collect();
        for scorer in &m.scorers {
            let batched = scorer.score_batch(&[user], &[history.as_slice()]);
            prop_assert_eq!(
                &batched[0],
                &scorer.score(user, &history),
                "{}: singleton batch diverged", scorer.name()
            );
        }
    }
}

/// Empty-history rows in a mixed batch score exactly like scalar calls
/// (all-zero for models that special-case them).
#[test]
fn mixed_empty_and_nonempty_rows() {
    let m = models();
    let histories: Vec<Vec<ItemId>> = vec![vec![], vec![1, 2, 3], vec![], vec![5 % m.num_items]];
    let users = [0usize, 1, 2, 3];
    let refs: Vec<&[ItemId]> = histories.iter().map(Vec::as_slice).collect();
    for scorer in &m.scorers {
        let batched = scorer.score_batch(&users, &refs);
        for ((&u, h), row) in users.iter().zip(&refs).zip(&batched) {
            assert_eq!(*row, scorer.score(u, h), "{}: mixed batch diverged", scorer.name());
        }
    }
}
