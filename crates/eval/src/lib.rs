//! # irs_eval — the IRS evaluator and every paper metric
//!
//! Offline evaluation of influence paths needs `P(i | s)` for
//! sequence–item pairs that never occur in the logged data.  Following
//! §IV-B3, a trained next-item recommender (the **Evaluator**, Bert4Rec in
//! the paper) provides that probability via a softmax over its scores.
//!
//! Implemented metrics:
//!
//! * [`evaluate_paths`] — `SR_M`, `IoI_M`, `IoR_M` and `log(PPL)`
//!   (Eq. 11–14) for a batch of generated influence paths.
//! * [`next_item_metrics`] — `HR@K` and `MRR` (Eq. 18) for the traditional
//!   next-item task (Tables II and IV).
//! * [`stepwise_evolution`] — the per-step objective/item probability
//!   curves of Fig. 9.
//! * [`histogram`] — binned counts for the `r_u` distribution of Fig. 8.

mod evaluator;
mod metrics;
pub mod quality;
mod stepwise;

pub use evaluator::Evaluator;
pub use metrics::{evaluate_paths, next_item_metrics, IrsMetrics, NextItemMetrics, PathRecord};
pub use quality::{genre_diversity, intra_list_distance, novelty, path_quality, PathQuality};
pub use stepwise::{histogram, stepwise_evolution, StepwiseCurves};
