//! The IRS evaluator: probability estimates from a trained next-item model.

use irs_baselines::{rank_of, SequentialScorer};
use irs_data::{ItemId, UserId};
use irs_tensor::log_sum_exp;

/// Wraps any [`SequentialScorer`] and turns its scores into the probability
/// measure `P(i | s) = softmax(scores(s))[i]` (Eq. 16–17).
pub struct Evaluator<S> {
    scorer: S,
}

impl<S: SequentialScorer> Evaluator<S> {
    /// Wrap a trained scorer.
    pub fn new(scorer: S) -> Self {
        Evaluator { scorer }
    }

    /// The wrapped scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// Evaluator display name.
    pub fn name(&self) -> &'static str {
        self.scorer.name()
    }

    /// Raw scores over all items given a viewing sequence.
    pub fn scores(&self, user: UserId, seq: &[ItemId]) -> Vec<f32> {
        self.scorer.score(user, seq)
    }

    /// `log P(item | seq)` under the evaluator.
    pub fn log_prob(&self, user: UserId, seq: &[ItemId], item: ItemId) -> f32 {
        let scores = self.scores(user, seq);
        scores[item] - log_sum_exp(&scores)
    }

    /// `P(item | seq)`.
    pub fn prob(&self, user: UserId, seq: &[ItemId], item: ItemId) -> f32 {
        self.log_prob(user, seq, item).exp()
    }

    /// 1-based rank of `item` among all items given `seq`.
    pub fn rank(&self, user: UserId, seq: &[ItemId], item: ItemId) -> usize {
        rank_of(&self.scores(user, seq), item)
    }

    /// Raw scores for a batch of `(user, seq)` queries: one `score_batch`
    /// forward serves every row, with arithmetic identical per row to the
    /// scalar accessors above.  Callers needing several statistics of the
    /// same row (log-prob *and* rank, or probabilities of two items)
    /// should derive them from one returned row rather than issuing
    /// separate calls — see `evaluate_paths` and `stepwise_evolution`.
    pub fn scores_batch(&self, users: &[UserId], seqs: &[&[ItemId]]) -> Vec<Vec<f32>> {
        self.scorer.score_batch(users, seqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scorer that always returns fixed scores.
    struct Fixed(Vec<f32>);

    impl SequentialScorer for Fixed {
        fn num_items(&self) -> usize {
            self.0.len()
        }
        fn score(&self, _u: UserId, _h: &[ItemId]) -> Vec<f32> {
            self.0.clone()
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let ev = Evaluator::new(Fixed(vec![0.0, 1.0, 2.0]));
        let total: f32 = (0..3).map(|i| ev.prob(0, &[], i)).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(ev.prob(0, &[], 2) > ev.prob(0, &[], 0));
    }

    #[test]
    fn log_prob_matches_softmax() {
        let ev = Evaluator::new(Fixed(vec![1.0, 3.0]));
        let p1 = (3.0f32).exp() / ((1.0f32).exp() + (3.0f32).exp());
        assert!((ev.log_prob(0, &[], 1) - p1.ln()).abs() < 1e-5);
    }

    #[test]
    fn rank_uses_scores() {
        let ev = Evaluator::new(Fixed(vec![0.2, 0.9, 0.5]));
        assert_eq!(ev.rank(0, &[], 1), 1);
        assert_eq!(ev.rank(0, &[], 0), 3);
    }
}
