//! Stepwise interest-evolution curves (Fig. 9) and histograms (Fig. 8).

use irs_baselines::SequentialScorer;

use crate::evaluator::Evaluator;
use crate::metrics::PathRecord;

/// Per-step averaged probabilities along influence paths.
#[derive(Debug, Clone)]
pub struct StepwiseCurves {
    /// `P(i_t | s_h ⊕ i_{<k})` averaged over paths, indexed by step `k`.
    pub objective_prob: Vec<f64>,
    /// `P(i_k | s_h ⊕ i_{<k})` averaged over paths, indexed by step `k`.
    pub item_prob: Vec<f64>,
    /// Number of paths contributing to each step.
    pub support: Vec<usize>,
}

/// Compute the Fig. 9 curves.
///
/// Following the paper, paths that reach the objective before `steps`
/// ("early-success paths") can be excluded so every averaged step has the
/// same population.
pub fn stepwise_evolution<S: SequentialScorer>(
    evaluator: &Evaluator<S>,
    paths: &[PathRecord],
    steps: usize,
    exclude_early_success: bool,
) -> StepwiseCurves {
    let mut objective_prob = vec![0.0f64; steps];
    let mut item_prob = vec![0.0f64; steps];
    let mut support = vec![0usize; steps];

    // Advance all included paths in lockstep: at step `k` every path still
    // alive contributes one row to a single batched scores call, and that
    // row yields both `P(objective | ctx)` and `P(item_k | ctx)` — the
    // scalar loop paid two forward passes per (path, step).
    let included: Vec<&PathRecord> = paths
        .iter()
        .filter(|rec| !(exclude_early_success && rec.success() && rec.path.len() < steps))
        .collect();
    let mut ctxs: Vec<Vec<irs_data::ItemId>> =
        included.iter().map(|rec| rec.history.clone()).collect();
    for k in 0..steps {
        let alive: Vec<usize> =
            (0..included.len()).filter(|&i| k < included[i].path.len()).collect();
        if alive.is_empty() {
            break;
        }
        let users: Vec<_> = alive.iter().map(|&i| included[i].user).collect();
        let refs: Vec<&[irs_data::ItemId]> = alive.iter().map(|&i| ctxs[i].as_slice()).collect();
        let scores = evaluator.scores_batch(&users, &refs);
        for (&i, s) in alive.iter().zip(&scores) {
            let rec = included[i];
            let item = rec.path[k];
            let lse = irs_tensor::log_sum_exp(s);
            objective_prob[k] += (s[rec.objective] - lse).exp() as f64;
            item_prob[k] += (s[item] - lse).exp() as f64;
            support[k] += 1;
            ctxs[i].push(item);
        }
    }
    for k in 0..steps {
        if support[k] > 0 {
            objective_prob[k] /= support[k] as f64;
            item_prob[k] /= support[k] as f64;
        }
    }
    StepwiseCurves { objective_prob, item_prob, support }
}

/// Equal-width histogram over `values`: returns `(bin_center, count)`.
pub fn histogram(values: &[f32], bins: usize) -> Vec<(f32, usize)> {
    assert!(bins > 0, "need at least one bin");
    if values.is_empty() {
        return Vec::new();
    }
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let width = ((hi - lo) / bins as f32).max(f32::MIN_POSITIVE);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - lo) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    counts.into_iter().enumerate().map(|(b, c)| (lo + width * (b as f32 + 0.5), c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_data::{ItemId, UserId};

    struct ChainScorer {
        n: usize,
    }

    impl SequentialScorer for ChainScorer {
        fn num_items(&self) -> usize {
            self.n
        }
        fn score(&self, _u: UserId, h: &[ItemId]) -> Vec<f32> {
            let mut s = vec![0.0f32; self.n];
            if let Some(&last) = h.last() {
                if last + 1 < self.n {
                    s[last + 1] = 6.0;
                }
            }
            s
        }
        fn name(&self) -> &'static str {
            "chain"
        }
    }

    #[test]
    fn objective_probability_rises_on_converging_path() {
        let ev = Evaluator::new(ChainScorer { n: 8 });
        let rec = PathRecord { user: 0, history: vec![0], objective: 4, path: vec![1, 2, 3, 4] };
        let curves = stepwise_evolution(&ev, &[rec], 4, false);
        // At the final step the context ends at item 3, whose chain
        // successor is the objective: P(4 | ctx) must have risen sharply.
        assert!(curves.objective_prob[3] > curves.objective_prob[0] * 2.0);
        assert_eq!(curves.support, vec![1, 1, 1, 1]);
        // Path items are always the chain successor => high item prob.
        assert!(curves.item_prob.iter().all(|&p| p > 0.5));
    }

    #[test]
    fn early_success_paths_can_be_excluded() {
        let ev = Evaluator::new(ChainScorer { n: 8 });
        let early = PathRecord { user: 0, history: vec![0], objective: 1, path: vec![1] };
        let long = PathRecord { user: 0, history: vec![0], objective: 7, path: vec![1, 2, 3, 4] };
        let curves = stepwise_evolution(&ev, &[early.clone(), long.clone()], 4, true);
        assert_eq!(curves.support, vec![1, 1, 1, 1], "early-success path excluded");
        let curves_all = stepwise_evolution(&ev, &[early, long], 4, false);
        assert_eq!(curves_all.support[0], 2);
    }

    #[test]
    fn histogram_covers_all_values() {
        let vals = vec![0.0, 0.1, 0.2, 0.9, 1.0];
        let h = histogram(&vals, 5);
        assert_eq!(h.len(), 5);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        // Bin centers are increasing.
        for w in h.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn histogram_of_identical_values_lands_in_one_bin() {
        let h = histogram(&[3.0; 7], 4);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 7);
        assert_eq!(h.iter().filter(|&&(_, c)| c > 0).count(), 1);
    }
}
