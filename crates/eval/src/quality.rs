//! Path-quality metrics beyond the paper: genre diversity, intra-list
//! distance and novelty.
//!
//! The paper evaluates influence paths on influencing power (SR/IoI/IoR)
//! and smoothness (PPL).  Production systems additionally care about what
//! the path *costs the user*: how much catalogue variety it exposes
//! (diversity), how spread out the recommendations are in item space
//! (intra-list distance) and how far from the popularity mainstream they
//! go (novelty).  These metrics quantify that and power the extended
//! analyses in the benchmark harness.

use irs_data::{Dataset, ItemId};
use irs_embed::ItemDistance;

use crate::metrics::PathRecord;

/// Genre diversity of a path: distinct genres on the path divided by path
/// length (0 for empty paths, in `(0, …]` otherwise; > 1 is possible for
/// multi-genre items).
pub fn genre_diversity(dataset: &Dataset, path: &[ItemId]) -> f64 {
    if path.is_empty() {
        return 0.0;
    }
    let mut genres: Vec<usize> =
        path.iter().flat_map(|&i| dataset.genres.get(i).cloned().unwrap_or_default()).collect();
    genres.sort_unstable();
    genres.dedup();
    genres.len() as f64 / path.len() as f64
}

/// Mean pairwise distance between path items (intra-list distance).
/// 0 for paths with fewer than two items.
pub fn intra_list_distance<D: ItemDistance>(dist: &D, path: &[ItemId]) -> f64 {
    if path.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..path.len() {
        for j in (i + 1)..path.len() {
            total += dist.distance(path[i], path[j]) as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Mean novelty of a path: `−log₂(popularity share)` averaged over items
/// (higher = more long-tail).  `counts` are global item interaction counts.
pub fn novelty(counts: &[usize], path: &[ItemId]) -> f64 {
    if path.is_empty() {
        return 0.0;
    }
    let total: usize = counts.iter().sum::<usize>().max(1);
    path.iter()
        .map(|&i| {
            let share = (counts.get(i).copied().unwrap_or(0) as f64 + 0.5) / total as f64;
            -share.log2()
        })
        .sum::<f64>()
        / path.len() as f64
}

/// Aggregated quality metrics over a batch of paths (empty paths are
/// skipped; `count` reports how many contributed).
#[derive(Debug, Clone, PartialEq)]
pub struct PathQuality {
    /// Mean genre diversity.
    pub genre_diversity: f64,
    /// Mean intra-list distance.
    pub intra_list_distance: f64,
    /// Mean novelty.
    pub novelty: f64,
    /// Number of non-empty paths.
    pub count: usize,
}

/// Compute [`PathQuality`] over a batch of path records.
pub fn path_quality<D: ItemDistance>(
    dataset: &Dataset,
    dist: &D,
    paths: &[PathRecord],
) -> PathQuality {
    let counts = dataset.item_counts();
    let mut gd = 0.0;
    let mut ild = 0.0;
    let mut nov = 0.0;
    let mut n = 0usize;
    for rec in paths {
        if rec.path.is_empty() {
            continue;
        }
        gd += genre_diversity(dataset, &rec.path);
        ild += intra_list_distance(dist, &rec.path);
        nov += novelty(&counts, &rec.path);
        n += 1;
    }
    if n == 0 {
        return PathQuality {
            genre_diversity: 0.0,
            intra_list_distance: 0.0,
            novelty: 0.0,
            count: 0,
        };
    }
    PathQuality {
        genre_diversity: gd / n as f64,
        intra_list_distance: ild / n as f64,
        novelty: nov / n as f64,
        count: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        Dataset {
            name: "t".into(),
            num_users: 1,
            num_items: 4,
            // item 0 very popular, item 3 rare
            sequences: vec![vec![0, 0, 0, 0, 1, 1, 2, 3]],
            genres: vec![vec![0], vec![0], vec![1], vec![2]],
            genre_names: vec!["A".into(), "B".into(), "C".into()],
            item_names: vec![],
        }
    }

    struct LineDist;
    impl ItemDistance for LineDist {
        fn distance(&self, a: ItemId, b: ItemId) -> f32 {
            (a as f32 - b as f32).abs()
        }
    }

    #[test]
    fn genre_diversity_counts_distinct_genres() {
        let d = tiny_dataset();
        assert_eq!(genre_diversity(&d, &[0, 1]), 0.5); // one genre over 2 items
        assert_eq!(genre_diversity(&d, &[0, 2]), 1.0); // two genres over 2 items
        assert_eq!(genre_diversity(&d, &[]), 0.0);
    }

    #[test]
    fn intra_list_distance_matches_hand_computation() {
        let ild = intra_list_distance(&LineDist, &[0, 2, 4]);
        // pairs: |0-2|=2, |0-4|=4, |2-4|=2 => mean 8/3
        assert!((ild - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(intra_list_distance(&LineDist, &[7]), 0.0);
    }

    #[test]
    fn rare_items_are_more_novel() {
        let d = tiny_dataset();
        let counts = d.item_counts();
        assert!(novelty(&counts, &[3]) > novelty(&counts, &[0]));
    }

    #[test]
    fn aggregate_skips_empty_paths() {
        let d = tiny_dataset();
        let paths = vec![
            PathRecord { user: 0, history: vec![0], objective: 3, path: vec![1, 2, 3] },
            PathRecord { user: 0, history: vec![0], objective: 3, path: vec![] },
        ];
        let q = path_quality(&d, &LineDist, &paths);
        assert_eq!(q.count, 1);
        assert!(q.genre_diversity > 0.0);
        assert!(q.novelty > 0.0);
    }
}
