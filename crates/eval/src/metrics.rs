//! IRS path metrics (Eq. 11–14) and next-item metrics (Eq. 18).

use irs_baselines::SequentialScorer;
use irs_data::split::TestCase;
use irs_data::{ItemId, UserId};

use crate::evaluator::Evaluator;

/// One generated influence path with its inputs.
#[derive(Debug, Clone)]
pub struct PathRecord {
    /// The user the path was generated for.
    pub user: UserId,
    /// Viewing history `s_h`.
    pub history: Vec<ItemId>,
    /// The objective item `i_t`.
    pub objective: ItemId,
    /// The generated influence path `s_p` (may be empty).
    pub path: Vec<ItemId>,
}

impl PathRecord {
    /// Whether the path reached the objective.
    pub fn success(&self) -> bool {
        self.path.last() == Some(&self.objective)
    }
}

/// Aggregate IRS metrics over a batch of paths.
#[derive(Debug, Clone, PartialEq)]
pub struct IrsMetrics {
    /// Success rate `SR_M` ∈ [0, 1] (Eq. 11).
    pub sr: f64,
    /// Increase of interest `IoI_M` (Eq. 12).
    pub ioi: f64,
    /// Increment of rank `IoR_M` (Eq. 13).
    pub ior: f64,
    /// Mean log-perplexity of paths (Eq. 14, reported as `log(PPL)`;
    /// lower is smoother).
    pub log_ppl: f64,
    /// Number of paths evaluated.
    pub count: usize,
}

impl std::fmt::Display for IrsMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SR {:.4}  IoI {:+.4}  IoR {:+.1}  log(PPL) {:.3}",
            self.sr, self.ioi, self.ior, self.log_ppl
        )
    }
}

/// Evaluate influence paths with the evaluator (Eq. 11–14).
///
/// * `SR` counts paths whose last item is the objective.
/// * `IoI` is `log P(i_t | s_h ⊕ s_p) − log P(i_t | s_h)` averaged over all
///   paths (empty paths contribute 0).
/// * `IoR` is the (positively oriented) rank improvement of the objective.
/// * `log(PPL)` is `−(1/|s_p|) Σ_k log P(i_k | s_h ⊕ i_{<k})` averaged over
///   non-empty paths.
pub fn evaluate_paths<S: SequentialScorer>(
    evaluator: &Evaluator<S>,
    paths: &[PathRecord],
) -> IrsMetrics {
    assert!(!paths.is_empty(), "no paths to evaluate");

    // Assemble every evaluator query up front — per path: the objective
    // against `history` and `history ⊕ path` (IoI and IoR share one scores
    // row each), plus one query per path step (log-PPL) — then answer them
    // through the batched scorer in bounded chunks.
    let mut q_users: Vec<UserId> = Vec::new();
    let mut q_ctxs: Vec<Vec<ItemId>> = Vec::new();
    let mut q_items: Vec<ItemId> = Vec::new();
    for rec in paths {
        let mut full = rec.history.clone();
        full.extend_from_slice(&rec.path);
        q_users.push(rec.user);
        q_ctxs.push(rec.history.clone());
        q_items.push(rec.objective);
        q_users.push(rec.user);
        q_ctxs.push(full);
        q_items.push(rec.objective);
        let mut ctx = rec.history.clone();
        for &item in &rec.path {
            q_users.push(rec.user);
            q_ctxs.push(ctx.clone());
            q_items.push(item);
            ctx.push(item);
        }
    }

    // Chunked batch answers: (log-prob, rank) per query row.  The chunk
    // bound caps transient activation memory at ~chunk × catalogue floats.
    const CHUNK: usize = 64;
    let mut lps: Vec<f64> = Vec::with_capacity(q_users.len());
    let mut ranks: Vec<f64> = Vec::with_capacity(q_users.len());
    for start in (0..q_users.len()).step_by(CHUNK) {
        let end = (start + CHUNK).min(q_users.len());
        let refs: Vec<&[ItemId]> = q_ctxs[start..end].iter().map(Vec::as_slice).collect();
        for (scores, &item) in
            evaluator.scores_batch(&q_users[start..end], &refs).iter().zip(&q_items[start..end])
        {
            lps.push((scores[item] - irs_tensor::log_sum_exp(scores)) as f64);
            ranks.push(irs_baselines::rank_of(scores, item) as f64);
        }
    }

    let mut sr = 0.0f64;
    let mut ioi = 0.0f64;
    let mut ior = 0.0f64;
    let mut log_ppl = 0.0f64;
    let mut ppl_count = 0usize;
    let mut cursor = 0usize;
    for rec in paths {
        if rec.success() {
            sr += 1.0;
        }
        let (before, after) = (cursor, cursor + 1);
        cursor += 2;
        ioi += lps[after] - lps[before];
        ior += ranks[before] - ranks[after]; // −(R_after − R_before)
        if !rec.path.is_empty() {
            let acc: f64 = lps[cursor..cursor + rec.path.len()].iter().sum();
            log_ppl += -acc / rec.path.len() as f64;
            ppl_count += 1;
        }
        cursor += rec.path.len();
    }
    debug_assert_eq!(cursor, lps.len(), "query/answer bookkeeping out of sync");

    let n = paths.len() as f64;
    IrsMetrics {
        sr: sr / n,
        ioi: ioi / n,
        ior: ior / n,
        log_ppl: if ppl_count > 0 { log_ppl / ppl_count as f64 } else { f64::NAN },
        count: paths.len(),
    }
}

/// Next-item ranking metrics (Eq. 18, plus NDCG@K).
#[derive(Debug, Clone, PartialEq)]
pub struct NextItemMetrics {
    /// Hit ratio at the configured cut-off.
    pub hr: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Normalised discounted cumulative gain at the cut-off (single
    /// relevant item, so `1 / log₂(1 + rank)` when the item is in the
    /// top-K, else 0).
    pub ndcg: f64,
    /// The cut-off `K` used for `hr` and `ndcg`.
    pub k: usize,
}

impl std::fmt::Display for NextItemMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HR@{} {:.4}  MRR {:.4}  NDCG@{} {:.4}",
            self.k, self.hr, self.mrr, self.k, self.ndcg
        )
    }
}

/// Compute `HR@K` / `MRR` / `NDCG@K` of a scorer on held-out next-item
/// test cases.
pub fn next_item_metrics<S: SequentialScorer>(
    scorer: &S,
    test: &[TestCase],
    k: usize,
) -> NextItemMetrics {
    assert!(!test.is_empty(), "no test cases");
    let mut hr = 0.0f64;
    let mut mrr = 0.0f64;
    let mut ndcg = 0.0f64;
    for tc in test {
        let scores = scorer.score(tc.user, &tc.history);
        let rank = irs_baselines::rank_of(&scores, tc.next_item);
        if rank <= k {
            hr += 1.0;
            ndcg += 1.0 / (1.0 + rank as f64).log2();
        }
        mrr += 1.0 / rank as f64;
    }
    let n = test.len() as f64;
    NextItemMetrics { hr: hr / n, mrr: mrr / n, ndcg: ndcg / n, k }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluator whose scores strongly prefer `seq.last() + 1`.
    struct ChainScorer {
        n: usize,
    }

    impl SequentialScorer for ChainScorer {
        fn num_items(&self) -> usize {
            self.n
        }
        fn score(&self, _u: UserId, h: &[ItemId]) -> Vec<f32> {
            let mut s = vec![0.0f32; self.n];
            if let Some(&last) = h.last() {
                if last + 1 < self.n {
                    s[last + 1] = 6.0;
                }
                if last + 2 < self.n {
                    s[last + 2] = 3.0;
                }
            }
            s
        }
        fn name(&self) -> &'static str {
            "chain"
        }
    }

    fn record(history: Vec<ItemId>, objective: ItemId, path: Vec<ItemId>) -> PathRecord {
        PathRecord { user: 0, history, objective, path }
    }

    #[test]
    fn sr_counts_successes() {
        let ev = Evaluator::new(ChainScorer { n: 10 });
        let paths = vec![record(vec![0], 3, vec![1, 2, 3]), record(vec![0], 5, vec![1, 2])];
        let m = evaluate_paths(&ev, &paths);
        assert!((m.sr - 0.5).abs() < 1e-9);
        assert_eq!(m.count, 2);
    }

    #[test]
    fn ioi_positive_when_path_leads_to_objective() {
        let ev = Evaluator::new(ChainScorer { n: 10 });
        // After path 1,2 the context ends at 2; objective 3 is the top
        // next item => its probability increased vs history [0].
        let paths = vec![record(vec![0], 3, vec![1, 2])];
        let m = evaluate_paths(&ev, &paths);
        assert!(m.ioi > 0.0, "IoI must be positive, got {}", m.ioi);
        assert!(m.ior > 0.0, "IoR must be positive, got {}", m.ior);
    }

    #[test]
    fn smooth_chain_path_has_lower_ppl_than_random_path() {
        let ev = Evaluator::new(ChainScorer { n: 10 });
        let smooth = evaluate_paths(&ev, &[record(vec![0], 9, vec![1, 2, 3])]);
        let rough = evaluate_paths(&ev, &[record(vec![0], 9, vec![7, 4, 9])]);
        assert!(
            smooth.log_ppl < rough.log_ppl,
            "chain-following path must be smoother: {} vs {}",
            smooth.log_ppl,
            rough.log_ppl
        );
    }

    #[test]
    fn empty_paths_leave_ppl_nan_and_zero_ioi() {
        let ev = Evaluator::new(ChainScorer { n: 10 });
        let m = evaluate_paths(&ev, &[record(vec![0], 5, vec![])]);
        assert_eq!(m.sr, 0.0);
        assert!(m.ioi.abs() < 1e-9);
        assert!(m.log_ppl.is_nan());
    }

    #[test]
    fn next_item_metrics_on_chain() {
        let scorer = ChainScorer { n: 10 };
        let test = vec![
            TestCase { user: 0, history: vec![0, 1], next_item: 2 },
            TestCase { user: 0, history: vec![3], next_item: 5 },
        ];
        let m = next_item_metrics(&scorer, &test, 1);
        // First case: rank 1 hit; second: item 5 = last+2 → rank 2, miss at K=1.
        assert!((m.hr - 0.5).abs() < 1e-9);
        assert!((m.mrr - 0.75).abs() < 1e-9);
        // NDCG@1: only the rank-1 case counts, gain 1/log2(2) = 1.
        assert!((m.ndcg - 0.5).abs() < 1e-9);
        let m20 = next_item_metrics(&scorer, &test, 20);
        assert!((m20.hr - 1.0).abs() < 1e-9);
        assert!(m20.hr >= m.hr, "HR must be monotone in K");
        // NDCG@20: (1 + 1/log2(3)) / 2.
        let expected = (1.0 + 1.0 / 3f64.log2()) / 2.0;
        assert!((m20.ndcg - expected).abs() < 1e-9);
        assert!(m20.ndcg >= m.ndcg, "NDCG must be monotone in K");
    }

    #[test]
    fn ndcg_bounded_by_hr() {
        let scorer = ChainScorer { n: 10 };
        let test = vec![
            TestCase { user: 0, history: vec![0, 1], next_item: 2 },
            TestCase { user: 0, history: vec![3], next_item: 5 },
            TestCase { user: 0, history: vec![7], next_item: 0 },
        ];
        for k in [1, 5, 20] {
            let m = next_item_metrics(&scorer, &test, k);
            assert!(m.ndcg <= m.hr + 1e-12, "NDCG@{k} {} must be ≤ HR@{k} {}", m.ndcg, m.hr);
            assert!(m.ndcg >= 0.0);
        }
    }
}
