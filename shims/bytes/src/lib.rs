//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate:
//! a growable byte buffer ([`BytesMut`]) and the little-endian cursor traits
//! ([`Buf`], [`BufMut`]) that `irs_nn`'s parameter serialisation uses.

use std::ops::{Deref, DerefMut};

/// Reading cursor over a byte source; implemented for `&[u8]`, which
/// advances in place (`*self = &self[n..]`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Appending writer; implemented for [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable, contiguous byte buffer (derefs to `[u8]`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::new();
        w.put_slice(b"IRSP");
        w.put_u32_le(1);
        w.put_u16_le(0xBEEF);
        w.put_u8(7);
        w.put_f32_le(1.5);

        let mut r: &[u8] = &w;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"IRSP");
        assert_eq!(r.get_u32_le(), 1);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn truncated_read_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
