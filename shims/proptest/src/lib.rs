//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate. Implements the subset this workspace's property tests use:
//!
//! * [`Strategy`] with range strategies (`-3.0f32..3.0`, `0usize..6`, …),
//!   [`collection::vec`], and [`Strategy::prop_map`];
//! * the [`proptest!`] macro, expanding each property into an ordinary
//!   `#[test]` that draws `cases` deterministic samples (seeded from the
//!   test name, so failures reproduce exactly);
//! * [`prop_assert!`] / [`prop_assert_eq!`] (panic-based here — no
//!   shrinking, the one real-proptest feature this stand-in drops).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Deterministic per-test RNG: seeded from the test's name via FNV-1a.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, usize, u64, u32, u16, u8, i64, i32, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Number of elements a [`vec()`] strategy produces: either exact or
    /// drawn uniformly from a range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        Exact(usize),
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), *r.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => rng.random_range(lo..hi),
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert inside a [`proptest!`] body (panic-based; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f32, f32)> {
        (0.0f32..1.0, 1.0f32..2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect bounds.
        #[test]
        fn ranges_in_bounds(x in -3.0f32..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        /// vec + prop_map compose.
        #[test]
        fn vec_and_map(v in collection::vec(0usize..5, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        /// Tuple strategies work.
        #[test]
        fn tuples(p in pair()) {
            prop_assert!(p.0 < p.1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = collection::vec(0usize..100, 10);
        prop_assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
