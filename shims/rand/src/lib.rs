//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the rand 0.9 API its code actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   SplitMix64 (`seed_from_u64`), matching rand's "same seed ⇒ same
//!   stream on every platform" contract that the paper-reproduction
//!   experiments rely on.
//! * [`Rng::random`] / [`Rng::random_range`] for the primitive types the
//!   models sample (`f32`, `f64`, `bool`, and integer index ranges).
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The stream produced is **not** bit-identical to upstream rand; it is
//! merely deterministic. All experiment results recorded in this repo were
//! produced with this generator.

/// Low-level source of randomness (the object-safe core trait).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, `{false, true}` for bool, full range for ints).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i64 => u64, i32 => u32, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing ergonomic sampling methods (blanket-implemented for every
/// [`RngCore`], including `&mut R`, so `fn f<R: Rng + ?Sized>(rng: &mut R)`
/// call-sites work exactly as with upstream rand).
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's standard domain.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`; panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (seeded via SplitMix64).
    ///
    /// Same seed ⇒ same stream, on every platform — the property the
    /// experiment harness depends on for reproducibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extensions: in-place Fisher–Yates shuffle and random choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.random_range(0..self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f32>(), b.random::<f32>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.random_range(3usize..=4);
            assert!(v == 3 || v == 4);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should not be identity");
    }

    #[test]
    fn works_through_unsized_generic() {
        fn gauss_ish<R: crate::Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.random::<f32>() + rng.random::<f32>()
        }
        let mut r = StdRng::seed_from_u64(3);
        let x = gauss_ish(&mut r);
        assert!((0.0..2.0).contains(&x));
    }
}
