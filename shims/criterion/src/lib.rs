//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. Each benchmark warms up briefly, then runs a fixed
//! number of timed samples and reports the median time per iteration to
//! stdout. No statistical analysis, plots, or baselines — just honest
//! wall-clock medians, which is enough for the relative comparisons the
//! `EXPERIMENTS.md` performance notes make.
//!
//! Used with `harness = false` bench targets and the usual
//! `criterion_group!` / `criterion_main!` pair.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 15;

/// Every `(label, median_ns)` measured so far in this process.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Results recorded so far — lets a bench target compare its own
/// measurements (e.g. assert a batched/scalar speed-up) without re-timing.
pub fn recorded_results() -> Vec<(String, f64)> {
    RESULTS.lock().expect("results poisoned").clone()
}

/// Write all recorded results as JSON to the path named by the
/// `CRITERION_JSON` environment variable (no-op when unset).  Called by
/// the `criterion_main!`-generated `main` after all groups finish, so CI
/// can upload a machine-readable artifact next to the stdout report.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results poisoned");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let escaped: String =
            label.chars().map(|c| if c == '"' || c == '\\' { '_' } else { c }).collect();
        out.push_str(&format!(
            "    {{ \"name\": \"{escaped}\", \"median_ns\": {ns:.1} }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    }
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Time `routine`: a short warm-up, then `samples` timed runs; the
    /// median is what gets reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = times[times.len() / 2];
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Smoke mode: `CRITERION_SAMPLES` caps every benchmark's sample count
    // (CI runs the suite for trend data, not statistical confidence).
    let samples = match std::env::var("CRITERION_SAMPLES").ok().and_then(|v| v.parse().ok()) {
        Some(cap) => samples.min(std::cmp::max(cap, 1)),
        None => samples,
    };
    let mut b = Bencher { samples, median_ns: f64::NAN };
    f(&mut b);
    let ns = b.median_ns;
    RESULTS.lock().expect("results poisoned").push((label.to_string(), ns));
    let pretty = if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    };
    println!("bench: {label:<40} median {pretty}/iter ({samples} samples)");
}

/// Top-level harness: owns default settings, hands out groups.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_count, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_count: self.sample_count, _parent: self }
    }
}

/// A named collection of related benchmarks (shares a `sample_size`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_count, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_count, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups (for `harness = false` targets),
/// then dump a JSON summary when `CRITERION_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_works() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("f", |b| b.iter(|| black_box(2) * 2));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| b.iter(|| n * n));
        g.finish();
    }
}
