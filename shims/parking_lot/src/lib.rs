//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: thin wrappers over `std::sync` primitives exposing parking_lot's
//! non-poisoning API (`lock()` returns the guard directly). Slower than the
//! real thing, behaviourally identical for this workspace's uses.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock()` never returns a poison error: a panic while the
/// lock is held simply passes the data through to the next locker.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
