//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: thin wrappers over `std::sync` primitives exposing parking_lot's
//! non-poisoning API (`lock()` returns the guard directly). Slower than the
//! real thing, behaviourally identical for this workspace's uses.

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// RAII mutex guard.  Wraps std's guard in an `Option` so [`Condvar`]
/// waits can move the inner guard out by value (std's waits consume the
/// guard; parking_lot's re-lock through `&mut`) without unsafe code.  The
/// slot is only ever `None` transiently inside a wait, while the caller's
/// `&mut` borrow is held by the condvar.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside condvar waits")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside condvar waits")
    }
}

/// A mutex whose `lock()` never returns a poison error: a panic while the
/// lock is held simply passes the data through to the next locker.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Whether a [`Condvar`] wait ended because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API (std's
/// waits take the guard by value; parking_lot's re-lock in place).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside condvar waits");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Instant,
    ) -> WaitTimeoutResult {
        let dur = timeout.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, dur)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside condvar waits");
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        use std::sync::Arc;
        use std::time::{Duration, Instant};

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut ready = pair.0.lock();
        // Nothing signals: the wait must report a timeout.
        let result = pair.1.wait_for(&mut ready, Duration::from_millis(10));
        assert!(result.timed_out());
        assert!(!*ready);
        drop(ready);

        let signaller = pair.clone();
        let t = std::thread::spawn(move || {
            *signaller.0.lock() = true;
            signaller.1.notify_all();
        });
        let mut ready = pair.0.lock();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !*ready {
            assert!(
                !pair.1.wait_until(&mut ready, deadline).timed_out(),
                "signaller must wake the waiter well before the deadline"
            );
        }
        drop(ready);
        t.join().unwrap();
    }
}
