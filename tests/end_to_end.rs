//! End-to-end integration: synthetic data → preprocessing → split → model
//! training → influence-path generation → metric evaluation, across all
//! workspace crates.

use influential_rs::core::{generate_influence_path, Vanilla};
use influential_rs::eval::{evaluate_paths, Evaluator};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

#[test]
fn smoke_single_epoch_irn_generates_a_path() {
    // Minimal viability check, cheaper than the full pipeline below:
    // synthetic dataset -> one training pass of IRN -> one influence path.
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let mut cfg = h.irn_config();
    cfg.train.epochs = 1;
    let irn = h.train_irn_with(&cfg);

    let (test, objectives) = h.test_slice();
    let tc = &test[0];
    let m = h.config.m;
    let path = generate_influence_path(&irn, tc.user, &tc.history, objectives[0], m);
    assert!(!path.is_empty(), "a barely-trained IRN must still propose items");
    assert!(path.len() <= m, "path budget M={m} exceeded: {}", path.len());
    for &i in &path {
        assert!(i < h.dataset.num_items, "invalid item {i}");
    }
}

#[test]
fn full_pipeline_produces_valid_paths_and_metrics() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let evaluator = Evaluator::new(h.train_bert4rec());
    let irn = h.train_irn();
    let paths = h.generate_paths(&irn, h.config.m);
    let (test, _) = h.test_slice();
    assert_eq!(paths.len(), test.len());

    for rec in &paths {
        // Path items must be valid catalogue items and unique.
        let mut seen = rec.history.clone();
        for &i in &rec.path {
            assert!(i < h.dataset.num_items, "invalid item {i}");
            assert!(!seen.contains(&i) || i == rec.objective, "repeated item {i}");
            seen.push(i);
        }
        assert!(rec.path.len() <= h.config.m);
        // A successful path must end exactly at the objective.
        if rec.path.contains(&rec.objective) {
            assert_eq!(*rec.path.last().unwrap(), rec.objective);
        }
    }

    let metrics = evaluate_paths(&evaluator, &paths);
    assert!((0.0..=1.0).contains(&metrics.sr));
    assert!(metrics.ioi.is_finite());
    assert!(metrics.ior.is_finite());
    assert!(metrics.log_ppl.is_finite() || metrics.log_ppl.is_nan());
}

#[test]
fn irn_objective_conditioning_beats_objective_blind_baseline() {
    // The central claim of the paper at miniature scale: a model that sees
    // the objective (IRN with PIM) reaches it more often than a vanilla
    // recommender that cannot.
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let irn_paths = h.generate_paths(&irn, h.config.m);
    let sr_irn = irn_paths.iter().filter(|p| p.success()).count() as f64 / irn_paths.len() as f64;

    let pop = h.train_pop();
    let vanilla = Vanilla::new(&pop);
    let pop_paths = h.generate_paths(&vanilla, h.config.m);
    let sr_pop = pop_paths.iter().filter(|p| p.success()).count() as f64 / pop_paths.len() as f64;

    assert!(
        sr_irn >= sr_pop,
        "IRN (SR {sr_irn}) must not lose to objective-blind POP (SR {sr_pop})"
    );
}

#[test]
fn harness_builds_are_deterministic() {
    let a = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let b = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    assert_eq!(a.dataset.sequences, b.dataset.sequences);
    assert_eq!(a.objectives, b.objectives);
    assert_eq!(a.embeddings.as_flat(), b.embeddings.as_flat());
}

#[test]
fn path_generation_is_deterministic() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let irn = h.train_irn();
    let p1 = h.generate_paths(&irn, 5);
    let p2 = h.generate_paths(&irn, 5);
    for (a, b) in p1.iter().zip(&p2) {
        assert_eq!(a.path, b.path);
    }
}
