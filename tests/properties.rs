//! Cross-crate property tests: invariants that must hold for arbitrary
//! generator seeds and configuration corners.

use influential_rs::data::split::{pad_to, split_dataset, PaddingScheme, SplitConfig};
use influential_rs::data::synth::{generate, SynthConfig};
use influential_rs::data::{pad_token, Dataset};
use influential_rs::graph::{dijkstra_path, ItemGraph};
use proptest::prelude::*;

fn synth(seed: u64) -> Dataset {
    generate(&SynthConfig::tiny(seed)).dataset
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Split + re-padding round-trips: every padded training input ends
    /// with the subsequence's own items.
    #[test]
    fn padded_subsequences_preserve_suffix(seed in 0u64..500) {
        let d = synth(seed);
        let split = split_dataset(&d, &SplitConfig { l_min: 4, l_max: 9, val_fraction: 0.1, seed });
        let pad = pad_token(d.num_items);
        for sub in split.train.iter().take(20) {
            let padded = pad_to(&sub.items, 12, pad, PaddingScheme::Pre);
            prop_assert_eq!(padded.len(), 12);
            let keep = sub.items.len().min(12);
            prop_assert_eq!(
                &padded[12 - keep..],
                &sub.items[sub.items.len() - keep..]
            );
        }
    }

    /// The item graph built from any dataset supports Dijkstra queries that
    /// return edge-connected paths.
    #[test]
    fn item_graph_paths_are_edge_connected(seed in 0u64..500) {
        let d = synth(seed);
        let g = ItemGraph::from_sequences(d.num_items, &d.sequences);
        let src = d.sequences[0][0];
        for target in (0..d.num_items).step_by(7) {
            if let Some(p) = dijkstra_path(&g, src, target) {
                prop_assert_eq!(p[0], src);
                prop_assert_eq!(*p.last().unwrap(), target);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    /// Every held-out test case references only valid items and its
    /// history stays duplicate-free of the label position.
    #[test]
    fn test_cases_reference_valid_items(seed in 0u64..500) {
        let d = synth(seed);
        let split = split_dataset(&d, &SplitConfig { l_min: 4, l_max: 9, val_fraction: 0.1, seed });
        for tc in &split.test {
            prop_assert!(tc.next_item < d.num_items);
            for &i in &tc.history {
                prop_assert!(i < d.num_items);
            }
            prop_assert!(!tc.history.is_empty());
        }
    }
}

#[test]
fn evaluator_probabilities_are_normalised_end_to_end() {
    use influential_rs::baselines::Pop;
    use influential_rs::eval::Evaluator;
    let d = synth(42);
    let ev = Evaluator::new(Pop::fit(&d));
    let total: f32 = (0..d.num_items).map(|i| ev.prob(0, &[0], i)).sum();
    assert!((total - 1.0).abs() < 1e-3, "softmax must normalise: {total}");
}
