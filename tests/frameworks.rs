//! Cross-crate behaviour of the three IRS frameworks on shared synthetic
//! data.

use influential_rs::core::{
    generate_influence_path, InfluenceRecommender, PathAlgorithm, Pf2Inf, Rec2Inf, Vanilla,
};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

#[test]
fn pf2inf_paths_walk_graph_edges_to_the_objective() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let graph = h.item_graph();
    let rec = Pf2Inf::new(graph, PathAlgorithm::Dijkstra);
    let paths = h.generate_paths(&rec, 50);
    let graph = h.item_graph();
    let mut successes = 0;
    for rec in &paths {
        if rec.path.is_empty() {
            continue;
        }
        let mut prev = *rec.history.last().unwrap();
        for &i in &rec.path {
            assert!(graph.has_edge(prev, i), "Pf2Inf path must follow edges");
            prev = i;
        }
        if rec.success() {
            successes += 1;
        }
    }
    // With a generous budget, the shortest-path method reaches connected
    // objectives; the synthetic graph is mostly one component.
    assert!(successes > 0, "Dijkstra should reach at least one objective");
}

#[test]
fn rec2inf_with_full_catalogue_k_recommends_objective_immediately() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let pop = h.train_pop();
    let dist = h.distance();
    // k = catalogue size: the objective itself is always a candidate with
    // distance 0, so every path has length 1 (the paper's k = |I| limit).
    let rec = Rec2Inf::new(&pop, &dist, h.dataset.num_items);
    let (test, objectives) = h.test_slice();
    for (tc, &obj) in test.iter().zip(&objectives).take(10) {
        let path = generate_influence_path(&rec, tc.user, &tc.history, obj, 5);
        assert_eq!(path, vec![obj], "distance-0 objective must be picked first");
    }
}

#[test]
fn rec2inf_success_rate_dominates_vanilla() {
    // The Rec2Inf adaptation must reach objectives at least as often as
    // the unadapted recommender (Table III's main qualitative finding for
    // the adapted baselines).
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let pop = h.train_pop();
    let dist = h.distance();
    let k = (h.dataset.num_items / 4).max(5);

    let vanilla_paths = h.generate_paths(&Vanilla::new(&pop), h.config.m);
    let adapted_paths = h.generate_paths(&Rec2Inf::new(&pop, &dist, k), h.config.m);
    let sr = |paths: &[influential_rs::eval::PathRecord]| {
        paths.iter().filter(|p| p.success()).count() as f64 / paths.len() as f64
    };
    assert!(
        sr(&adapted_paths) >= sr(&vanilla_paths),
        "Rec2Inf ({}) must not reach fewer objectives than Vanilla ({})",
        sr(&adapted_paths),
        sr(&vanilla_paths)
    );
}

#[test]
fn framework_names_identify_backbones() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let pop = h.train_pop();
    let dist = h.distance();
    assert_eq!(Vanilla::new(&pop).name(), "Vanilla(POP)");
    assert_eq!(Rec2Inf::new(&pop, &dist, 5).name(), "Rec2Inf(POP)");
    let rec = Pf2Inf::new(h.item_graph(), PathAlgorithm::Mst);
    assert_eq!(rec.name(), "Pf2Inf(MST)");
}
