//! Pinned-trajectory training determinism.
//!
//! Trains every scorer family (all seven baselines + IRN) on the tiny
//! preset and asserts that the per-epoch loss curves and the final
//! parameters are **bitwise** identical to a checked-in fixture.  This is
//! the correctness gate for training-engine refactors: graph reuse,
//! kernel routing and optimizer fusion must all preserve accumulation
//! order exactly (the same contract the batched inference paths honour),
//! so the trajectories recorded before a refactor must survive it
//! unchanged.
//!
//! Regenerate the fixture (only when a trajectory change is *intended*,
//! e.g. a new hyperparameter default) with:
//!
//! ```text
//! IRS_UPDATE_TRAJECTORIES=1 cargo test --test training_determinism
//! ```

use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/training_trajectories.txt");

/// FNV-1a over the serialised (IRSP) parameter bytes — a stable bitwise
/// fingerprint of a trained model.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Trajectory {
    name: &'static str,
    /// Per-epoch mean training loss (empty for the non-graph models).
    losses: Vec<f32>,
    /// Fingerprint of the final parameters.
    params: u64,
}

impl Trajectory {
    fn format(&self) -> String {
        let losses: Vec<String> =
            self.losses.iter().map(|l| format!("{:08x}", l.to_bits())).collect();
        format!("{} losses={} params={:016x}", self.name, losses.join(","), self.params)
    }
}

fn saved_bytes(save: impl FnOnce(&mut Vec<u8>) -> std::io::Result<()>) -> Vec<u8> {
    let mut bytes = Vec::new();
    save(&mut bytes).expect("in-memory save cannot fail");
    bytes
}

/// Train all eight families on the harness and collect their trajectories.
fn train_all(h: &Harness) -> Vec<Trajectory> {
    let mut out = Vec::new();

    let pop = h.train_pop();
    out.push(Trajectory {
        name: "pop",
        losses: Vec::new(),
        params: fingerprint(&saved_bytes(|w| pop.save(w))),
    });

    let bpr = h.train_bpr();
    out.push(Trajectory {
        name: "bpr",
        losses: Vec::new(),
        params: fingerprint(&saved_bytes(|w| bpr.save(w))),
    });

    let transrec = h.train_transrec();
    out.push(Trajectory {
        name: "transrec",
        losses: Vec::new(),
        params: fingerprint(&saved_bytes(|w| transrec.save(w))),
    });

    let gru4rec = h.train_gru4rec();
    out.push(Trajectory {
        name: "gru4rec",
        losses: gru4rec.training_losses().to_vec(),
        params: fingerprint(&saved_bytes(|w| gru4rec.save(w))),
    });

    let caser = h.train_caser();
    out.push(Trajectory {
        name: "caser",
        losses: caser.training_losses().to_vec(),
        params: fingerprint(&saved_bytes(|w| caser.save(w))),
    });

    let sasrec = h.train_sasrec();
    out.push(Trajectory {
        name: "sasrec",
        losses: sasrec.training_losses().to_vec(),
        params: fingerprint(&saved_bytes(|w| sasrec.save(w))),
    });

    let bert4rec = h.train_bert4rec();
    out.push(Trajectory {
        name: "bert4rec",
        losses: bert4rec.training_losses().to_vec(),
        params: fingerprint(&saved_bytes(|w| bert4rec.save(w))),
    });

    let irn = h.train_irn();
    out.push(Trajectory {
        name: "irn",
        losses: irn.training_losses().to_vec(),
        params: fingerprint(&saved_bytes(|w| irn.save(w))),
    });

    out
}

fn tiny_harness() -> Harness {
    let mut cfg = HarnessConfig::tiny(DatasetKind::LastfmLike);
    // Two epochs so the fixture pins a *curve*, not a single point.
    cfg.epochs = 2;
    Harness::build(cfg)
}

fn parse_fixture(text: &str) -> Vec<(String, Vec<u32>, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("fixture line missing name").to_string();
        let losses_field = parts.next().expect("fixture line missing losses");
        let params_field = parts.next().expect("fixture line missing params");
        let losses_hex = losses_field.strip_prefix("losses=").expect("malformed losses field");
        let losses: Vec<u32> = if losses_hex.is_empty() {
            Vec::new()
        } else {
            losses_hex
                .split(',')
                .map(|h| u32::from_str_radix(h, 16).expect("bad loss bits"))
                .collect()
        };
        let params = params_field.strip_prefix("params=").expect("malformed params field");
        let params = u64::from_str_radix(params, 16).expect("bad param fingerprint");
        out.push((name, losses, params));
    }
    out
}

#[test]
fn trajectories_are_invariant_to_kernel_thread_count() {
    // Every tensor kernel accumulates each output element in a fixed
    // order regardless of how many worker threads the work fans out
    // over, so forcing a multi-thread schedule (even on a 1-core host —
    // `std::thread::scope` still splits the work) must not move a single
    // bit of a training trajectory.
    use influential_rs::tensor::set_kernel_threads;
    let h = tiny_harness();

    set_kernel_threads(Some(1));
    let serial = {
        let sas = h.train_sasrec();
        let gru = h.train_gru4rec();
        (
            sas.training_losses().to_vec(),
            fingerprint(&saved_bytes(|w| sas.save(w))),
            gru.training_losses().to_vec(),
            fingerprint(&saved_bytes(|w| gru.save(w))),
        )
    };
    set_kernel_threads(Some(3));
    let threaded = {
        let sas = h.train_sasrec();
        let gru = h.train_gru4rec();
        (
            sas.training_losses().to_vec(),
            fingerprint(&saved_bytes(|w| sas.save(w))),
            gru.training_losses().to_vec(),
            fingerprint(&saved_bytes(|w| gru.save(w))),
        )
    };
    set_kernel_threads(None);

    let bits = |v: &[f32]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&serial.0), bits(&threaded.0), "sasrec loss curve moved across thread counts");
    assert_eq!(serial.1, threaded.1, "sasrec params moved across thread counts");
    assert_eq!(bits(&serial.2), bits(&threaded.2), "gru4rec loss curve moved across thread counts");
    assert_eq!(serial.3, threaded.3, "gru4rec params moved across thread counts");
}

#[test]
fn trajectories_match_pinned_fixture() {
    let h = tiny_harness();
    let trajectories = train_all(&h);

    if std::env::var("IRS_UPDATE_TRAJECTORIES").is_ok() {
        let mut text = String::from(
            "# Pinned training trajectories (tiny preset, 2 epochs).\n\
             # Regenerate: IRS_UPDATE_TRAJECTORIES=1 cargo test --test training_determinism\n",
        );
        for t in &trajectories {
            text.push_str(&t.format());
            text.push('\n');
        }
        std::fs::write(FIXTURE, text).expect("cannot write fixture");
        eprintln!("fixture updated: {FIXTURE}");
        return;
    }

    let text = std::fs::read_to_string(FIXTURE).expect(
        "missing fixture; run IRS_UPDATE_TRAJECTORIES=1 cargo test --test training_determinism",
    );
    let pinned = parse_fixture(&text);
    assert_eq!(pinned.len(), trajectories.len(), "fixture family count mismatch");
    for (t, (name, losses, params)) in trajectories.iter().zip(&pinned) {
        assert_eq!(t.name, name, "fixture family order mismatch");
        let got: Vec<u32> = t.losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            &got,
            losses,
            "{}: loss curve drifted from the pinned trajectory \
             (got {:?}, pinned {:?} as f32 bits) — the training engine is no \
             longer bitwise-identical to the recorded graph path",
            t.name,
            t.losses,
            losses.iter().map(|&b| f32::from_bits(b)).collect::<Vec<_>>()
        );
        assert_eq!(
            t.params, *params,
            "{}: final parameters drifted from the pinned trajectory",
            t.name
        );
    }
}
