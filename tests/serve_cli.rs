//! Binary-level integration tests for the real-data CLI path and the
//! serving subsystem: `irs train --ratings` on the checked-in fixtures,
//! then `irs serve` driven over real TCP — create a session, request
//! items, hot-swap the snapshot mid-run, and assert a clean exit.
//!
//! This is the same dance the CI server-smoke step performs with curl;
//! running it inside `cargo test` keeps the protocol pinned by tier-1.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn fixture(name: &str) -> String {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", name].iter().collect();
    path.to_str().unwrap().to_string()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("irs_serve_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Train a tiny model on the MovieLens fixture; returns the IRSP path.
fn train_fixture_model() -> PathBuf {
    let model = scratch("fixture.irsp");
    let output = Command::new(env!("CARGO_BIN_EXE_irs"))
        .args([
            "train",
            "--ratings",
            &fixture("mini_ratings.dat"),
            "--movies",
            &fixture("mini_movies.dat"),
            "--epochs",
            "1",
            "--model-out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("run irs train");
    assert!(output.status.success(), "train failed:\n{}", String::from_utf8_lossy(&output.stderr));
    let bytes = std::fs::read(&model).expect("model file written");
    assert_eq!(&bytes[..4], b"IRSP", "train must write an IRSP snapshot");
    model
}

/// Minimal HTTP client: one request, parsed status + raw body.
fn request(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to irs serve");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let payload = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, payload)
}

fn json_usize(body: &str, key: &str) -> Option<usize> {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker)? + marker.len();
    let rest: String = body[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    rest.parse().ok()
}

#[test]
fn train_then_serve_with_hot_swap_over_tcp() {
    let model = train_fixture_model();

    // Port 0 = ephemeral; the server prints the bound address on stderr.
    let mut server = Command::new(env!("CARGO_BIN_EXE_irs"))
        .args([
            "serve",
            "--ratings",
            &fixture("mini_ratings.dat"),
            "--movies",
            &fixture("mini_movies.dat"),
            "--model",
            model.to_str().unwrap(),
            "--port",
            "0",
            "--max-batch",
            "8",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn irs serve");
    let stderr = server.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let port: u16 = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stderr");
        if let Some(at) = line.find("http://127.0.0.1:") {
            let rest = &line[at + "http://127.0.0.1:".len()..];
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            break digits.parse().expect("parse port");
        }
    };
    // Drain the rest of stderr in the background so the server never
    // blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines {});

    let (status, health) = request(port, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz: {health}");
    assert_eq!(json_usize(&health, "version"), Some(1));

    // Session protocol: create → next → accept feedback.
    let (status, created) = request(
        port,
        "POST",
        "/v1/session",
        "{\"user\": 0, \"history\": [0, 1, 2], \"objective\": 7, \"max_len\": 3}",
    );
    assert_eq!(status, 200, "create: {created}");
    let sid = json_usize(&created, "session_id").expect("session id");

    let (status, next) = request(port, "POST", &format!("/v1/session/{sid}/next"), "");
    assert_eq!(status, 200, "next: {next}");
    let item = json_usize(&next, "item").expect("proposed item");
    let (status, fb) = request(
        port,
        "POST",
        &format!("/v1/session/{sid}/feedback"),
        &format!("{{\"item\": {item}, \"accepted\": true}}"),
    );
    assert_eq!(status, 200, "feedback: {fb}");

    // Mid-run hot-swap to the same file: version bumps, serving goes on.
    let (status, swap) = request(
        port,
        "POST",
        "/v1/admin/swap",
        &format!("{{\"path\": \"{}\"}}", model.to_str().unwrap()),
    );
    assert_eq!(status, 200, "swap: {swap}");
    assert_eq!(json_usize(&swap, "version"), Some(2));
    let (status, next2) = request(port, "POST", &format!("/v1/session/{sid}/next"), "");
    assert_eq!(status, 200, "next after swap: {next2}");

    // A mismatched snapshot is rejected without killing the server.
    let bogus = scratch("bogus.irsp");
    std::fs::write(&bogus, b"IRSPnot-a-real-file").unwrap();
    let (status, _) = request(
        port,
        "POST",
        "/v1/admin/swap",
        &format!("{{\"path\": \"{}\"}}", bogus.to_str().unwrap()),
    );
    assert_eq!(status, 400);

    let (status, stats) = request(port, "GET", "/v1/stats", "");
    assert_eq!(status, 200);
    assert!(json_usize(&stats, "requests").unwrap() >= 2, "stats: {stats}");
    assert_eq!(json_usize(&stats, "snapshot_version"), Some(2));

    // Clean shutdown: 200 on the route, exit code 0 from the process.
    let (status, _) = request(port, "POST", "/v1/admin/shutdown", "");
    assert_eq!(status, 200);
    let exit = server.wait().expect("wait for server");
    assert!(exit.success(), "server must exit cleanly, got {exit:?}");
    drain.join().unwrap();
}
