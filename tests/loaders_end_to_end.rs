//! Fixture-driven integration test for `irs_data::loaders`: checked-in
//! mini MovieLens/Lastfm dumps flow through the full real-data pipeline —
//! parse → assemble (preprocess + re-index) → split → one training step —
//! exercising the path a user with the actual dataset files would take.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

use influential_rs::baselines::{Gru4Rec, Gru4RecConfig, NeuralTrainConfig, SequentialScorer};
use influential_rs::data::loaders::{
    assemble_dataset, load_lastfm_tsv, load_movielens_movies, load_movielens_ratings,
};
use influential_rs::data::preprocess::PreprocessConfig;
use influential_rs::data::split::{sample_objectives, split_dataset, SplitConfig};

fn fixture(name: &str) -> BufReader<File> {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", name].iter().collect();
    BufReader::new(File::open(&path).unwrap_or_else(|e| panic!("open {path:?}: {e}")))
}

#[test]
fn movielens_fixture_parses_splits_and_trains() {
    let ratings = load_movielens_ratings(fixture("mini_ratings.dat")).expect("parse ratings");
    assert_eq!(ratings.skipped, 1, "the fixture plants exactly one malformed line");
    assert_eq!(ratings.records.len(), 100);
    let movies = load_movielens_movies(fixture("mini_movies.dat")).expect("parse movies");
    assert_eq!(movies.records.len(), 16);
    assert_eq!(movies.skipped, 0);

    let cfg = PreprocessConfig { min_count: 2, dedup_consecutive: true };
    let dataset = assemble_dataset("mini-ml", &ratings.records, Some(&movies.records), &cfg);
    dataset.check_invariants().expect("assembled dataset is consistent");
    assert_eq!(dataset.num_users, 10);
    assert!(dataset.num_items > 0);
    // Metadata survived re-indexing: every item carries a fixture title
    // and at least one genre.
    for i in 0..dataset.num_items {
        assert!(dataset.item_name(i).starts_with("Fixture Film"), "{}", dataset.item_name(i));
        assert!(!dataset.genres[i].is_empty(), "item {i} lost its genres");
    }

    // Split: every user contributes a held-out test case and at least one
    // training subsequence.
    let split_cfg = SplitConfig { l_min: 3, l_max: 6, val_fraction: 0.1, seed: 7 };
    let split = split_dataset(&dataset, &split_cfg);
    assert_eq!(split.test.len(), dataset.num_users);
    assert!(!split.train.is_empty());
    let objectives = sample_objectives(&dataset, &split.test, 2, 11);
    for (tc, &obj) in split.test.iter().zip(&objectives) {
        assert!(!tc.history.contains(&obj));
    }

    // One training step on the real-data subsequences: a single epoch with
    // one big batch, then a finite validation loss and well-formed scores.
    let model = Gru4Rec::fit(
        &split.train,
        dataset.num_items,
        &Gru4RecConfig {
            dim: 8,
            hidden: 8,
            max_len: 6,
            train: NeuralTrainConfig {
                epochs: 1,
                batch_size: split.train.len(),
                ..Default::default()
            },
        },
    );
    let loss = model.validation_loss(&split.train);
    assert!(loss.is_finite() && loss > 0.0, "training step produced loss {loss}");
    let tc = &split.test[0];
    let scores = model.score(tc.user, &tc.history);
    assert_eq!(scores.len(), dataset.num_items);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn lastfm_fixture_parses_and_splits() {
    let loaded = load_lastfm_tsv(fixture("mini_lastfm.tsv")).expect("parse tsv");
    assert_eq!(loaded.records.len(), 72);
    assert_eq!(loaded.skipped, 0, "header must not count as malformed");

    let cfg = PreprocessConfig { min_count: 2, dedup_consecutive: true };
    let dataset = assemble_dataset("mini-lastfm", &loaded.records, None, &cfg);
    dataset.check_invariants().expect("assembled dataset is consistent");
    assert_eq!(dataset.num_users, 8);
    assert!(dataset.genre_names.is_empty(), "no metadata without movies.dat");

    let split =
        split_dataset(&dataset, &SplitConfig { l_min: 3, l_max: 5, val_fraction: 0.0, seed: 3 });
    assert_eq!(split.test.len(), dataset.num_users);
    // The loaders sort by timestamp: each reconstructed sequence must match
    // the fixture's per-user listening order after re-indexing.
    for seq in &dataset.sequences {
        assert!(seq.len() >= 3, "fixture users listen to ≥3 surviving artists");
    }
}
