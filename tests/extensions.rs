//! Integration tests for the future-work extensions (§V of the paper):
//! interactive sessions with rejections, set/category objectives and
//! beam-search decoding, all running over the trained IRN.

use influential_rs::core::{
    beam_search_path, run_interactive_session, BeamConfig, ObjectiveSet, SetObjectiveRecommender,
    ThresholdUser, UserModel,
};
use influential_rs::data::{ItemId, UserId};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

#[test]
fn passive_interactive_session_matches_offline_path() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let (test, objectives) = h.test_slice();
    let tc = &test[0];
    let obj = objectives[0];

    struct AcceptAll;
    impl UserModel for AcceptAll {
        fn accepts(&mut self, _u: UserId, _c: &[ItemId], _i: ItemId) -> bool {
            true
        }
    }
    let outcome =
        run_interactive_session(&irn, &mut AcceptAll, tc.user, &tc.history, obj, h.config.m, 3);
    let offline =
        influential_rs::core::generate_influence_path(&irn, tc.user, &tc.history, obj, h.config.m);
    assert_eq!(outcome.accepted, offline, "passive user must reproduce Algorithm 1");
    assert!(outcome.rejected.is_empty());
}

#[test]
fn picky_users_cause_rejections_but_sessions_stay_valid() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let bert = h.train_bert4rec();
    let (test, objectives) = h.test_slice();

    let mut total_rejections = 0usize;
    for (tc, &obj) in test.iter().zip(&objectives).take(8) {
        let mut user = ThresholdUser::new(
            |u, ctx: &[ItemId]| {
                use influential_rs::baselines::SequentialScorer;
                bert.score(u, ctx)
            },
            0.9,
        );
        let out = run_interactive_session(&irn, &mut user, tc.user, &tc.history, obj, 8, 2);
        total_rejections += out.rejected.len();
        // Accepted and rejected sets are disjoint.
        for r in &out.rejected {
            assert!(!out.accepted.contains(r), "item {r} both accepted and rejected");
        }
        assert!(out.proposals >= out.accepted.len() + out.rejected.len());
        assert!((0.0..=1.0).contains(&out.rejection_rate()));
    }
    assert!(total_rejections > 0, "a 0.9-quantile user should reject something");
}

#[test]
fn genre_objective_paths_end_inside_the_genre() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let dist = h.distance();
    let genre = 0;
    let set = ObjectiveSet::from_genre(&h.dataset, genre);
    let rec = SetObjectiveRecommender::new(&irn, set.clone(), &dist);

    let (test, _) = h.test_slice();
    let mut reached_any = false;
    for tc in test.iter().take(10) {
        let (path, reached) = rec.generate(tc.user, &tc.history, h.config.m);
        if reached {
            reached_any = true;
            let last = *path.last().unwrap();
            assert!(
                h.dataset.genres[last].contains(&genre),
                "successful set path must end inside the target genre"
            );
        }
        assert!(path.len() <= h.config.m);
    }
    assert!(reached_any, "some path should reach the genre objective");
}

#[test]
fn beam_search_paths_are_valid_and_comparable_to_greedy() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let (test, objectives) = h.test_slice();
    let cfg = BeamConfig { beam_width: 2, branch: 2, max_len: h.config.m, success_bonus: 2.0 };

    for (tc, &obj) in test.iter().zip(&objectives).take(6) {
        let beam = beam_search_path(&irn, tc.user, &tc.history, obj, &cfg);
        assert!(beam.len() <= h.config.m);
        let mut seen = tc.history.clone();
        for &i in &beam {
            assert!(i < h.dataset.num_items);
            assert!(!seen.contains(&i) || i == obj, "beam repeated item {i}");
            seen.push(i);
        }
        if let Some(pos) = beam.iter().position(|&i| i == obj) {
            assert_eq!(pos, beam.len() - 1, "objective must terminate the beam path");
        }
    }
}
