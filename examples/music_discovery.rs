//! Music-discovery scenario on the Lastfm-like dataset: quantitative
//! comparison of IRN against the Rec2Inf adaptation of SASRec (§III-C),
//! using item2vec distances (the paper's Lastfm setting, §IV-C) and the
//! full §IV-B metric suite.
//!
//! ```text
//! cargo run --release --example music_discovery
//! ```

use influential_rs::core::{InfluenceRecommender, Rec2Inf};
use influential_rs::eval::{evaluate_paths, Evaluator};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

fn main() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    println!(
        "dataset: {} users, {} items ({} test users evaluated)",
        h.dataset.num_users,
        h.dataset.num_items,
        h.test_slice().0.len()
    );

    let evaluator = Evaluator::new(h.train_bert4rec());
    let dist = h.distance();
    let m = h.config.m;

    let sasrec = h.train_sasrec();
    let rec2inf = Rec2Inf::new(&sasrec, &dist, 10);
    let paths = h.generate_paths(&rec2inf, m);
    let met = evaluate_paths(&evaluator, &paths);
    println!("{:<18} {met}", rec2inf.name());

    let irn = h.train_irn();
    let paths = h.generate_paths(&irn, m);
    let met_irn = evaluate_paths(&evaluator, &paths);
    println!("{:<18} {met_irn}", irn.name());

    println!(
        "\nIRN vs Rec2Inf(SASRec): SR {:+.3}, IoI {:+.3}",
        met_irn.sr - met.sr,
        met_irn.ioi - met.ioi
    );
}
