//! Interactive persuasion with stepwise user dynamics — the paper's
//! future-work direction §V-(4), implemented in `irs_core::interactive`.
//!
//! A simulated user accepts or rejects each recommended item based on how
//! plausible the evaluator finds it; the recommender re-plans around
//! rejections.  The example sweeps user pickiness and reports how success
//! and rejection rates degrade.
//!
//! ```text
//! cargo run --release --example interactive_session
//! ```

use influential_rs::core::{run_interactive_session, ThresholdUser};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

fn main() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let irn = h.train_irn();
    let bert = h.train_bert4rec();
    let (test, objectives) = h.test_slice();

    println!("pickiness quantile -> success rate, mean rejections/session");
    for quantile in [0.0f32, 0.5, 0.8, 0.95] {
        let mut successes = 0usize;
        let mut rejections = 0usize;
        let n = test.len();
        for (tc, &obj) in test.iter().zip(&objectives) {
            // The user accepts items the evaluator scores above the
            // given quantile of its next-item distribution.
            let mut user = ThresholdUser::new(
                |u, ctx: &[usize]| {
                    use influential_rs::baselines::SequentialScorer;
                    bert.score(u, ctx)
                },
                quantile,
            );
            let outcome =
                run_interactive_session(&irn, &mut user, tc.user, &tc.history, obj, h.config.m, 3);
            if outcome.reached_objective {
                successes += 1;
            }
            rejections += outcome.rejected.len();
        }
        println!(
            "  q = {quantile:<4} -> SR {:.3}, {:.2} rejections/session",
            successes as f64 / n as f64,
            rejections as f64 / n as f64
        );
    }

    println!("\nWith q = 0 (accept everything) the outcome matches the offline protocol;");
    println!("pickier users force re-planning and lower the success rate — the stepwise");
    println!("dynamics the paper lists as future work.");
}
