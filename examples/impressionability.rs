//! Impressionability analysis: inspect the learned `r_u` distribution
//! (Fig. 8) and sweep the inference-time aggressiveness `w_t` to see the
//! SR/smoothness trade-off (Fig. 7) without retraining.
//!
//! ```text
//! cargo run --release --example impressionability
//! ```

use influential_rs::eval::{evaluate_paths, histogram, Evaluator};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

fn main() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::LastfmLike));
    let evaluator = Evaluator::new(h.train_bert4rec());
    let mut irn = h.train_irn();

    // Learned impressionability factors.
    let rus = irn.all_ru();
    let mean = rus.iter().sum::<f32>() / rus.len() as f32;
    println!("r_u over {} users: mean {:.4}", rus.len(), mean);
    for (center, count) in histogram(&rus, 8) {
        println!("  {center:+.3} | {}", "#".repeat(count));
    }

    // Inference-time aggressiveness sweep (the experiments retrain per
    // w_t; this example shows the cheap inference-only variant).
    println!("\nw_t sweep (inference-time):");
    for wt in [0.0f32, 0.5, 1.0, 2.0] {
        irn.set_wt(wt);
        let paths = h.generate_paths(&irn, h.config.m);
        let met = evaluate_paths(&evaluator, &paths);
        println!("  w_t = {wt:>3}: {met}");
    }
}
