//! Movie-persuasion scenario (the paper's Fig. 1 narrative): lead a user
//! whose history is concentrated in one genre toward an objective movie
//! from a different genre, and compare IRN against a vanilla recommender
//! that ignores the objective.
//!
//! ```text
//! cargo run --release --example movie_persuasion
//! ```

use influential_rs::core::{generate_influence_path, InfluenceRecommender, Vanilla};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

fn show_path(h: &Harness, label: &str, path: &[usize], objective: usize) {
    println!("\n{label}:");
    if path.is_empty() {
        println!("  (no path generated)");
        return;
    }
    for &item in path {
        let marker = if item == objective { "  <-- objective" } else { "" };
        println!("  {} [{}]{marker}", h.dataset.item_name(item), h.dataset.genre_label(item));
    }
}

fn main() {
    let h = Harness::build(HarnessConfig::quick(DatasetKind::MovielensLike));
    let (test, objectives) = h.test_slice();

    // Find a test user whose last-watched genre differs from the
    // objective's genre — the interesting persuasion case.
    let pick = test
        .iter()
        .zip(&objectives)
        .find(|(tc, &obj)| {
            let last = *tc.history.last().unwrap();
            h.dataset.genres[last].first() != h.dataset.genres[obj].first()
        })
        .expect("some user with a cross-genre objective");
    let (tc, &objective) = pick;
    let last = *tc.history.last().unwrap();
    println!(
        "user {} — last watched {} [{}]; objective {} [{}]",
        tc.user,
        h.dataset.item_name(last),
        h.dataset.genre_label(last),
        h.dataset.item_name(objective),
        h.dataset.genre_label(objective),
    );

    // IRN plans toward the objective...
    let irn = h.train_irn();
    let irn_path = generate_influence_path(&irn, tc.user, &tc.history, objective, 10);
    show_path(&h, &irn.name(), &irn_path, objective);

    // ...while the vanilla recommender just follows current interests.
    let sasrec = h.train_sasrec();
    let vanilla = Vanilla::new(&sasrec);
    let vanilla_path = generate_influence_path(&vanilla, tc.user, &tc.history, objective, 10);
    show_path(&h, &vanilla.name(), &vanilla_path, objective);

    println!(
        "\nIRN reached the objective: {}; vanilla reached it: {}",
        irn_path.last() == Some(&objective),
        vanilla_path.last() == Some(&objective),
    );
}
