//! Quickstart: the paper's full pipeline end to end — build a synthetic
//! dataset (§IV-A preprocessing/splitting), train IRN (§III-D), generate an
//! influence path with Algorithm 1, and score it with the offline
//! evaluator (§IV-B).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use influential_rs::baselines::{Bert4Rec, Bert4RecConfig, NeuralTrainConfig};
use influential_rs::core::{generate_influence_path, Irn, IrnConfig};
use influential_rs::data::preprocess::{preprocess_dataset, PreprocessConfig};
use influential_rs::data::split::{sample_objectives, split_dataset, SplitConfig};
use influential_rs::data::synth::{generate, SynthConfig};
use influential_rs::eval::{evaluate_paths, Evaluator, PathRecord};

fn main() {
    // 1. Data: a small Lastfm-like synthetic dataset, preprocessed and
    //    split exactly as §IV-A of the paper prescribes.
    let out = generate(&SynthConfig::lastfm_like(0.05));
    let dataset = preprocess_dataset(
        &out.dataset,
        &out.interactions,
        &PreprocessConfig { min_count: 5, dedup_consecutive: true },
    );
    println!(
        "dataset: {} users, {} items, {} interactions",
        dataset.num_users,
        dataset.num_items,
        dataset.num_interactions()
    );
    let split =
        split_dataset(&dataset, &SplitConfig { l_min: 8, l_max: 16, val_fraction: 0.1, seed: 7 });
    let objectives = sample_objectives(&dataset, &split.test, 5, 7);

    // 2. Train IRN (the core model) and Bert4Rec (the offline evaluator).
    let train_cfg = NeuralTrainConfig { epochs: 3, lr: 2e-3, ..Default::default() };
    let irn = Irn::fit(
        &split.train,
        &split.val,
        dataset.num_items,
        dataset.num_users,
        &IrnConfig { max_len: 16, train: train_cfg.clone(), ..Default::default() },
        None,
    );
    let bert = Bert4Rec::fit(
        &split.train,
        dataset.num_items,
        &Bert4RecConfig { max_len: 16, train: train_cfg, ..Default::default() },
    );
    let evaluator = Evaluator::new(bert);

    // 3. Generate one influence path per test user and evaluate.
    let records: Vec<PathRecord> = split
        .test
        .iter()
        .take(20)
        .zip(&objectives)
        .map(|(tc, &obj)| PathRecord {
            user: tc.user,
            history: tc.history.clone(),
            objective: obj,
            path: generate_influence_path(&irn, tc.user, &tc.history, obj, 10),
        })
        .collect();
    let metrics = evaluate_paths(&evaluator, &records);
    println!("IRN over {} users: {metrics}", records.len());

    // 4. Show one concrete path with genre labels.
    if let Some(rec) = records.iter().find(|r| !r.path.is_empty()) {
        let last = *rec.history.last().unwrap();
        println!(
            "\nuser {} — last watched: {} [{}]",
            rec.user,
            dataset.item_name(last),
            dataset.genre_label(last)
        );
        for &item in &rec.path {
            println!("  -> {} [{}]", dataset.item_name(item), dataset.genre_label(item));
        }
        println!(
            "objective: {} [{}] ({})",
            dataset.item_name(rec.objective),
            dataset.genre_label(rec.objective),
            if rec.success() { "reached" } else { "not reached" }
        );
    }
}
