//! # influential-rs — facade crate
//!
//! Rust reproduction of *"Influential Recommender System"* (Zhu, Ge, Gu,
//! Zhao, Lee — ICDE 2023).  This crate re-exports the workspace crates so
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`tensor`] — dense tensors + reverse-mode autograd ([`irs_tensor`]).
//! * [`nn`] — layers, losses, optimizers ([`irs_nn`]).
//! * [`data`] — datasets, synthetic generators, preprocessing ([`irs_data`]).
//! * [`graph`] — item graphs and path-finding ([`irs_graph`]).
//! * [`embed`] — item2vec embeddings and item distances ([`irs_embed`]).
//! * [`baselines`] — POP/BPR/TransRec/GRU4Rec/Caser/SASRec/Bert4Rec
//!   ([`irs_baselines`]).
//! * [`core`] — the IRN model with PIM and the Pf2Inf / Rec2Inf / Vanilla
//!   frameworks ([`irs_core`]).
//! * [`eval`] — the offline evaluator and all IRS metrics ([`irs_eval`]).
//! * [`serve`] — the online serving subsystem: session store,
//!   micro-batching scheduler, hot-swappable snapshots, HTTP frontend
//!   ([`irs_serve`]).
//! * [`obs`] — the observability layer: metrics registry, Prometheus
//!   exposition, windowed counters, leveled logger ([`irs_obs`]).
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through: build a
//! synthetic dataset, train IRN, generate an influence path and score it.

pub use irs_baselines as baselines;
pub use irs_bench as bench;
pub use irs_core as core;
pub use irs_data as data;
pub use irs_embed as embed;
pub use irs_eval as eval;
pub use irs_graph as graph;
pub use irs_nn as nn;
pub use irs_obs as obs;
pub use irs_serve as serve;
pub use irs_tensor as tensor;
