//! `irs` — command-line interface to influential-rs.
//!
//! ```text
//! irs stats     [--dataset lastfm|movielens] [--scale S] [--ratings FILE [--movies FILE]]
//! irs train     [--dataset ...] [--scale S] [--epochs N] --model-out FILE
//! irs generate  --model FILE [--dataset ...] [--scale S] [--users N] [--m M]
//! irs evaluate  --model FILE [--dataset ...] [--scale S] [--users N] [--m M]
//! irs serve     --model FILE [--port P] [--max-batch B] [--max-wait-us U] [--workers W]
//!               [--session-ttl-s S] [--http-workers N] [--idle-timeout-s S]
//!               [--context-cache-mb MB] [--online-train] [--publish-every-s S]
//!               [--replay-cap N] [--log-level L] [--log-format text|json]
//! irs demo      [--dataset ...]
//! ```
//!
//! The CLI runs on the synthetic datasets (deterministic given `--scale`)
//! or, with `--ratings FILE`, on real MovieLens/Lastfm dumps routed
//! through `irs_data::loaders` (`--dataset` selects the parse format;
//! `--movies` attaches MovieLens metadata).  Commands that load a model
//! (`generate`, `evaluate`, `serve`) must be given the same dataset flags
//! as the `train` run that produced it — item/user counts are part of the
//! architecture check.
//!
//! `serve` exposes the online serving subsystem (`irs_serve`): per-user
//! sessions, dynamic micro-batching, `POST /v1/admin/swap` hot-swaps of
//! retrained snapshots, and incremental per-session context caches
//! (budgeted by `--context-cache-mb`; hot-swaps invalidate them).
//! With `--online-train` it also runs a background trainer that folds
//! logged feedback into a student model and publishes canary snapshots
//! to arm 1; `POST /v1/admin/split` steers weighted traffic between the
//! stable and canary arms, and `promote`/`rollback` settle the winner.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use influential_rs::core::{generate_influence_path, EncodingLayout, Irn, IrnConfig};
use influential_rs::data::loaders::{load_dataset_from_files, RatingsFormat};
use influential_rs::data::preprocess::PreprocessConfig;
use influential_rs::data::stats::dataset_stats;
use influential_rs::data::Dataset;
use influential_rs::eval::{evaluate_paths, Evaluator, PathRecord};
use influential_rs::obs::log::{Format, Level};
use influential_rs::obs::{log_error, log_info};
use influential_rs::serve::{
    layout_name, BatchPolicy, Engine, HttpServer, IrnArchitecture, IrnOnlineLearner, OnlineConfig,
    OnlineHandle, OnlineLearner, ServerConfig, SnapshotLoader, SnapshotRegistry,
};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

/// Parsed command-line options.
struct Opts {
    command: String,
    dataset: DatasetKind,
    scale: Option<f32>,
    epochs: Option<usize>,
    users: usize,
    m: usize,
    model: Option<String>,
    model_out: Option<String>,
    ratings: Option<String>,
    movies: Option<String>,
    port: u16,
    max_batch: usize,
    max_wait_us: u64,
    workers: usize,
    patience: usize,
    /// Idle-session eviction TTL in seconds (0 disables the sweeper).
    session_ttl_s: u64,
    http_workers: usize,
    idle_timeout_s: u64,
    /// Byte budget (MiB) for per-session context caches (0 disables).
    context_cache_mb: usize,
    /// Inference-time sequence layout for the IRN scoring paths.
    /// `append` keeps encoded prefixes stable so serve steps can use the
    /// per-session context cache; `prepadded` is the paper's layout.
    layout: EncodingLayout,
    /// Run the background online trainer: fold logged feedback into a
    /// student model and publish canary snapshots to arm 1.
    online_train: bool,
    /// Seconds between timed canary publishes (only when dirty).
    publish_every_s: u64,
    /// Replay-buffer capacity in feedback events (oldest dropped first).
    replay_cap: usize,
    /// Minimum level for the structured logger (`error`..`trace`).
    log_level: Level,
    /// Log line format: human-readable text or one JSON object per line.
    log_format: Format,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: irs <stats|train|generate|evaluate|serve|demo> \
         [--dataset lastfm|movielens] [--scale S] [--epochs N] \
         [--users N] [--m M] [--model FILE] [--model-out FILE] \
         [--ratings FILE] [--movies FILE] \
         [--port P] [--max-batch B] [--max-wait-us U] [--workers W] [--patience P] \
         [--session-ttl-s S] [--http-workers N] [--idle-timeout-s S] \
         [--context-cache-mb MB] [--layout prepadded|append] \
         [--online-train] [--publish-every-s S] [--replay-cap N] \
         [--log-level error|warn|info|debug|trace] [--log-format text|json]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().cloned().ok_or("missing command")?;
    let mut opts = Opts {
        command,
        dataset: DatasetKind::MovielensLike,
        scale: None,
        epochs: None,
        users: 20,
        m: 20,
        model: None,
        model_out: None,
        ratings: None,
        movies: None,
        port: 7878,
        max_batch: 16,
        max_wait_us: 500,
        workers: 2,
        patience: 3,
        session_ttl_s: 900,
        http_workers: 0,
        idle_timeout_s: 30,
        context_cache_mb: 64,
        layout: EncodingLayout::PrePadded,
        online_train: false,
        publish_every_s: 60,
        replay_cap: 4096,
        log_level: Level::Info,
        log_format: Format::Text,
    };
    let mut i = 1;
    let take = |args: &[String], i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                opts.dataset = match take(&args, &mut i)?.as_str() {
                    "lastfm" => DatasetKind::LastfmLike,
                    "movielens" => DatasetKind::MovielensLike,
                    other => return Err(format!("unknown dataset '{other}'")),
                };
            }
            "--scale" => {
                opts.scale =
                    Some(take(&args, &mut i)?.parse().map_err(|e| format!("--scale: {e}"))?)
            }
            "--epochs" => {
                opts.epochs =
                    Some(take(&args, &mut i)?.parse().map_err(|e| format!("--epochs: {e}"))?)
            }
            "--users" => {
                opts.users = take(&args, &mut i)?.parse().map_err(|e| format!("--users: {e}"))?
            }
            "--m" => opts.m = take(&args, &mut i)?.parse().map_err(|e| format!("--m: {e}"))?,
            "--model" => opts.model = Some(take(&args, &mut i)?),
            "--model-out" => opts.model_out = Some(take(&args, &mut i)?),
            "--ratings" => opts.ratings = Some(take(&args, &mut i)?),
            "--movies" => opts.movies = Some(take(&args, &mut i)?),
            "--port" => {
                opts.port = take(&args, &mut i)?.parse().map_err(|e| format!("--port: {e}"))?
            }
            "--max-batch" => {
                opts.max_batch =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--max-batch: {e}"))?
            }
            "--max-wait-us" => {
                opts.max_wait_us =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--max-wait-us: {e}"))?
            }
            "--workers" => {
                opts.workers =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--patience" => {
                opts.patience =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--patience: {e}"))?
            }
            "--session-ttl-s" => {
                opts.session_ttl_s =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--session-ttl-s: {e}"))?
            }
            "--http-workers" => {
                opts.http_workers =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--http-workers: {e}"))?
            }
            "--idle-timeout-s" => {
                opts.idle_timeout_s =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--idle-timeout-s: {e}"))?
            }
            "--context-cache-mb" => {
                opts.context_cache_mb =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--context-cache-mb: {e}"))?
            }
            "--layout" => {
                opts.layout = match take(&args, &mut i)?.as_str() {
                    "prepadded" | "pre" => EncodingLayout::PrePadded,
                    "append" | "append-only" => EncodingLayout::AppendOnly,
                    other => return Err(format!("unknown layout '{other}'")),
                };
            }
            "--online-train" => opts.online_train = true,
            "--publish-every-s" => {
                opts.publish_every_s =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--publish-every-s: {e}"))?
            }
            "--replay-cap" => {
                opts.replay_cap =
                    take(&args, &mut i)?.parse().map_err(|e| format!("--replay-cap: {e}"))?
            }
            "--log-level" => {
                let v = take(&args, &mut i)?;
                opts.log_level =
                    Level::parse(&v).ok_or_else(|| format!("unknown log level '{v}'"))?;
            }
            "--log-format" => {
                let v = take(&args, &mut i)?;
                opts.log_format =
                    Format::parse(&v).ok_or_else(|| format!("unknown log format '{v}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn harness_config(opts: &Opts) -> HarnessConfig {
    let mut cfg = HarnessConfig::standard(opts.dataset);
    if let Some(s) = opts.scale {
        cfg.scale = s.clamp(0.005, 1.0);
    }
    if let Some(e) = opts.epochs {
        cfg.epochs = e;
    }
    cfg.test_users = opts.users;
    cfg.m = opts.m;
    cfg
}

/// Load the real dataset named by `--ratings` (format per `--dataset`),
/// or `None` when the synthetic pipeline should run.
fn load_real_dataset(opts: &Opts) -> Result<Option<Dataset>, String> {
    let Some(ratings) = &opts.ratings else {
        return Ok(None);
    };
    let format = match opts.dataset {
        DatasetKind::MovielensLike => RatingsFormat::MovielensDat,
        DatasetKind::LastfmLike => RatingsFormat::LastfmTsv,
    };
    let pre_cfg = PreprocessConfig { min_count: 5, dedup_consecutive: true };
    let loaded = load_dataset_from_files(
        format,
        std::path::Path::new(ratings),
        opts.movies.as_deref().map(std::path::Path::new),
        &pre_cfg,
    )
    .map_err(|e| format!("cannot load {ratings}: {e}"))?;
    if loaded.skipped > 0 {
        eprintln!("note: skipped {} malformed lines in {ratings}", loaded.skipped);
    }
    eprintln!(
        "loaded {}: {} users, {} items, {} interactions",
        ratings,
        loaded.records.num_users,
        loaded.records.num_items,
        loaded.records.num_interactions()
    );
    Ok(Some(loaded.records))
}

/// Build the harness, printing the error and mapping it to a failure
/// exit code (the shared front door of every harness-driven command).
fn build_harness(opts: &Opts) -> Result<Harness, ExitCode> {
    let cfg = harness_config(opts);
    let dataset = load_real_dataset(opts).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    Ok(match dataset {
        Some(dataset) => Harness::build_with_dataset(cfg, dataset),
        None => Harness::build(cfg),
    })
}

/// The dataset alone (no split / item2vec) — what `serve` needs to
/// reconstruct the snapshot architecture.
fn build_dataset(opts: &Opts) -> Result<(Dataset, HarnessConfig), String> {
    let cfg = harness_config(opts);
    let dataset = match load_real_dataset(opts)? {
        Some(d) => d,
        None => Harness::synth_dataset(&cfg),
    };
    Ok((dataset, cfg))
}

fn irn_config(h: &Harness) -> IrnConfig {
    h.irn_config()
}

fn cmd_stats(opts: &Opts) -> ExitCode {
    let h = match build_harness(opts) {
        Ok(h) => h,
        Err(code) => return code,
    };
    let s = dataset_stats(&h.dataset);
    println!(
        "{:<16} {:>7} {:>7} {:>12} {:>9} {:>11}",
        "dataset", "users", "items", "interactions", "density", "items/user"
    );
    println!("{s}");
    println!(
        "\nsplit: {} train / {} val subsequences, {} test users",
        h.split.train.len(),
        h.split.val.len(),
        h.split.test.len()
    );
    ExitCode::SUCCESS
}

fn cmd_train(opts: &Opts) -> ExitCode {
    let Some(out_path) = &opts.model_out else {
        eprintln!("train requires --model-out FILE");
        return ExitCode::from(2);
    };
    let h = match build_harness(opts) {
        Ok(h) => h,
        Err(code) => return code,
    };
    eprintln!("training IRN on {} ({} train subsequences)...", h.dataset.name, h.split.train.len());
    let irn = h.train_irn();
    let file = match std::fs::File::create(out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = irn.save(std::io::BufWriter::new(file)) {
        eprintln!("save failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("model written to {out_path}");
    println!("val loss: {:.4}", irn.dataset_loss(&h.split.val));
    ExitCode::SUCCESS
}

fn load_model(opts: &Opts, h: &Harness) -> Result<Irn, String> {
    let Some(path) = &opts.model else {
        return Err("this command requires --model FILE (create one with `irs train`)".into());
    };
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut config = irn_config(h);
    config.layout = opts.layout;
    Irn::load(std::io::BufReader::new(file), h.dataset.num_items, h.dataset.num_users, &config)
        .map_err(|e| format!("load failed: {e}"))
}

fn paths_for(h: &Harness, irn: &Irn, m: usize) -> Vec<PathRecord> {
    h.generate_paths(irn, m)
}

fn cmd_generate(opts: &Opts) -> ExitCode {
    let h = match build_harness(opts) {
        Ok(h) => h,
        Err(code) => return code,
    };
    let irn = match load_model(opts, &h) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (test, objectives) = h.test_slice();
    for (tc, &obj) in test.iter().zip(&objectives) {
        let path = generate_influence_path(&irn, tc.user, &tc.history, obj, opts.m);
        let reached = path.last() == Some(&obj);
        println!(
            "user {:>4}  objective {:<28} [{}] {}",
            tc.user,
            h.dataset.item_name(obj),
            h.dataset.genre_label(obj),
            if reached { "REACHED" } else { "" }
        );
        for &item in &path {
            println!("    -> {:<28} [{}]", h.dataset.item_name(item), h.dataset.genre_label(item));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(opts: &Opts) -> ExitCode {
    let h = match build_harness(opts) {
        Ok(h) => h,
        Err(code) => return code,
    };
    let irn = match load_model(opts, &h) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("training evaluator (Bert4Rec)...");
    let evaluator = Evaluator::new(h.train_bert4rec());
    let paths = paths_for(&h, &irn, opts.m);
    let metrics = evaluate_paths(&evaluator, &paths);
    println!("IRN on {} over {} users: {metrics}", h.dataset.name, paths.len());
    ExitCode::SUCCESS
}

fn cmd_serve(opts: &Opts) -> ExitCode {
    let Some(model_path) = &opts.model else {
        eprintln!("serve requires --model FILE (create one with `irs train`)");
        return ExitCode::from(2);
    };
    // Validate here so bad values exit 2 with a message like every other
    // flag error instead of tripping Engine::start's asserts.
    if opts.max_batch == 0 || opts.workers == 0 {
        eprintln!("serve requires --max-batch >= 1 and --workers >= 1");
        return ExitCode::from(2);
    }
    let (dataset, cfg) = match build_dataset(opts) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Layout is a scoring-path choice, not an architecture difference:
    // the same IRSP weights load under either, so any trained snapshot
    // can be served append-only (which is what enables caching).
    let mut irn_cfg = cfg.irn_config();
    irn_cfg.layout = opts.layout;
    // The online trainer (if enabled) boots its student from the same
    // IRSP file under the same config; clone before `arch` takes it.
    let student_cfg = irn_cfg.clone();
    let arch = IrnArchitecture {
        num_items: dataset.num_items,
        num_users: dataset.num_users,
        config: irn_cfg,
    };
    let initial = match arch.load_snapshot(model_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load snapshot {model_path}: {e}");
            eprintln!("(serve must be given the same --dataset/--scale flags as the train run)");
            return ExitCode::FAILURE;
        }
    };
    let label = initial.label.clone();
    let registry = Arc::new(SnapshotRegistry::new(initial));
    let engine = Arc::new(Engine::start(
        registry.clone(),
        BatchPolicy {
            max_batch: opts.max_batch,
            max_wait: Duration::from_micros(opts.max_wait_us),
            workers: opts.workers,
            queue_capacity: 1024,
        },
    ));
    let loader: SnapshotLoader = Arc::new(move |path: &str| arch.load_snapshot(path));
    let session_ttl = (opts.session_ttl_s > 0).then(|| Duration::from_secs(opts.session_ttl_s));
    let server = match HttpServer::bind(
        &format!("127.0.0.1:{}", opts.port),
        engine.clone(),
        Some(loader),
        ServerConfig {
            max_len: opts.m,
            patience: opts.patience,
            session_shards: 16,
            session_ttl,
            http_workers: opts.http_workers,
            idle_timeout: Duration::from_secs(opts.idle_timeout_s.max(1)),
            context_cache_mb: opts.context_cache_mb,
            layout: Some(opts.layout),
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind port {}: {e}", opts.port);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => log_info!(
            "serve",
            "serving {label} on http://{addr} ({} items, {} users; max_batch {}, wait {} µs, {} workers)",
            dataset.num_items, dataset.num_users, opts.max_batch, opts.max_wait_us, opts.workers
        ),
        Err(e) => {
            log_error!("serve", "cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match session_ttl {
        Some(ttl) => log_info!("serve", "idle sessions evicted after {} s", ttl.as_secs()),
        None => log_info!("serve", "session TTL disabled (--session-ttl-s 0)"),
    }
    // Same vocabulary `/v1/stats` uses (`layout`, `context_cache_budget_mb`)
    // so logs and stats can be correlated line for line.
    log_info!(
        "serve",
        "encoding layout {}; context cache budget {} MiB",
        layout_name(Some(opts.layout)),
        opts.context_cache_mb
    );
    if opts.context_cache_mb == 0 {
        log_info!("serve", "context caching disabled (--context-cache-mb 0)");
    } else if opts.layout == EncodingLayout::PrePadded {
        log_info!(
            "serve",
            "note: the prepadded layout cannot cache — serve with --layout append \
             to enable incremental steps"
        );
    }
    if opts.online_train {
        let bytes = match std::fs::read(model_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot re-read {model_path} for the online trainer: {e}");
                engine.shutdown();
                return ExitCode::FAILURE;
            }
        };
        let (num_items, num_users) = (dataset.num_items, dataset.num_users);
        let online = OnlineHandle::start(
            registry,
            OnlineConfig {
                publish_every: Duration::from_secs(opts.publish_every_s.max(1)),
                replay_cap: opts.replay_cap.max(1),
            },
            move || {
                let student = Irn::load(&bytes[..], num_items, num_users, &student_cfg)
                    .expect("student model loads: the serving snapshot already did");
                Box::new(IrnOnlineLearner::new(student)) as Box<dyn OnlineLearner>
            },
        );
        server.set_online(online);
        log_info!(
            "serve",
            "online trainer on: publish every {} s when dirty, replay cap {} events \
             (canary lands on arm 1; POST /v1/admin/split to route traffic)",
            opts.publish_every_s.max(1),
            opts.replay_cap.max(1)
        );
    }
    log_info!("serve", "POST /v1/admin/shutdown to stop");
    let handle = match server.handle() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot create server handle: {e}");
            engine.shutdown();
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = server.run() {
        log_error!("serve", "server error: {e}");
        engine.shutdown();
        return ExitCode::FAILURE;
    }
    let stats = engine.stats();
    engine.shutdown();
    log_info!(
        "serve",
        "shutdown: {} requests in {} batches (mean batch {:.2}); {} idle sessions evicted, {} still live",
        stats.requests,
        stats.batches,
        stats.mean_batch(),
        handle.evicted_sessions(),
        handle.live_sessions()
    );
    log_info!(
        "serve",
        "context cache: {} hits, {} misses, {} invalidated on swap, {} evicted ({} bytes resident)",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_invalidations,
        handle.cache_evictions(),
        handle.cache_resident_bytes()
    );
    ExitCode::SUCCESS
}

fn cmd_demo(opts: &Opts) -> ExitCode {
    let mut opts = Opts { users: 10, ..parse_defaults(opts) };
    opts.scale = Some(opts.scale.unwrap_or(0.03));
    let h = match build_harness(&opts) {
        Ok(h) => h,
        Err(code) => return code,
    };
    eprintln!("training IRN + evaluator at demo scale...");
    let irn = h.train_irn();
    let evaluator = Evaluator::new(h.train_bert4rec());
    let paths = paths_for(&h, &irn, opts.m.min(10));
    let metrics = evaluate_paths(&evaluator, &paths);
    println!("{metrics}");
    if let Some(rec) = paths.iter().find(|p| p.success()) {
        println!("\nexample successful path (user {}):", rec.user);
        for &item in &rec.path {
            println!("  -> {:<28} [{}]", h.dataset.item_name(item), h.dataset.genre_label(item));
        }
    }
    ExitCode::SUCCESS
}

fn parse_defaults(opts: &Opts) -> Opts {
    Opts {
        command: opts.command.clone(),
        dataset: opts.dataset,
        scale: opts.scale,
        epochs: opts.epochs,
        users: opts.users,
        m: opts.m,
        model: opts.model.clone(),
        model_out: opts.model_out.clone(),
        ratings: opts.ratings.clone(),
        movies: opts.movies.clone(),
        port: opts.port,
        max_batch: opts.max_batch,
        max_wait_us: opts.max_wait_us,
        workers: opts.workers,
        patience: opts.patience,
        session_ttl_s: opts.session_ttl_s,
        http_workers: opts.http_workers,
        idle_timeout_s: opts.idle_timeout_s,
        context_cache_mb: opts.context_cache_mb,
        layout: opts.layout,
        online_train: opts.online_train,
        publish_every_s: opts.publish_every_s,
        replay_cap: opts.replay_cap,
        log_level: opts.log_level,
        log_format: opts.log_format,
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    influential_rs::obs::log::set_level(opts.log_level);
    influential_rs::obs::log::set_format(opts.log_format);
    match opts.command.as_str() {
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "generate" => cmd_generate(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "serve" => cmd_serve(&opts),
        "demo" => cmd_demo(&opts),
        _ => usage(),
    }
}
