//! `irs` — command-line interface to influential-rs.
//!
//! ```text
//! irs stats     [--dataset lastfm|movielens] [--scale S]
//! irs train     [--dataset ...] [--scale S] [--epochs N] --model-out FILE
//! irs generate  --model FILE [--dataset ...] [--scale S] [--users N] [--m M]
//! irs evaluate  --model FILE [--dataset ...] [--scale S] [--users N] [--m M]
//! irs demo      [--dataset ...]
//! ```
//!
//! The CLI runs on the synthetic datasets (deterministic given `--scale`);
//! the same pipeline accepts real MovieLens/Lastfm dumps through
//! `irs_data::loaders` for users who have them.

use std::process::ExitCode;

use influential_rs::core::{generate_influence_path, Irn, IrnConfig};
use influential_rs::data::stats::dataset_stats;
use influential_rs::eval::{evaluate_paths, Evaluator, PathRecord};
use irs_bench::harness::{DatasetKind, Harness, HarnessConfig};

/// Parsed command-line options.
struct Opts {
    command: String,
    dataset: DatasetKind,
    scale: Option<f32>,
    epochs: Option<usize>,
    users: usize,
    m: usize,
    model: Option<String>,
    model_out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: irs <stats|train|generate|evaluate|demo> \
         [--dataset lastfm|movielens] [--scale S] [--epochs N] \
         [--users N] [--m M] [--model FILE] [--model-out FILE]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().cloned().ok_or("missing command")?;
    let mut opts = Opts {
        command,
        dataset: DatasetKind::MovielensLike,
        scale: None,
        epochs: None,
        users: 20,
        m: 20,
        model: None,
        model_out: None,
    };
    let mut i = 1;
    let take = |args: &[String], i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("missing value for {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                opts.dataset = match take(&args, &mut i)?.as_str() {
                    "lastfm" => DatasetKind::LastfmLike,
                    "movielens" => DatasetKind::MovielensLike,
                    other => return Err(format!("unknown dataset '{other}'")),
                };
            }
            "--scale" => {
                opts.scale =
                    Some(take(&args, &mut i)?.parse().map_err(|e| format!("--scale: {e}"))?)
            }
            "--epochs" => {
                opts.epochs =
                    Some(take(&args, &mut i)?.parse().map_err(|e| format!("--epochs: {e}"))?)
            }
            "--users" => {
                opts.users = take(&args, &mut i)?.parse().map_err(|e| format!("--users: {e}"))?
            }
            "--m" => opts.m = take(&args, &mut i)?.parse().map_err(|e| format!("--m: {e}"))?,
            "--model" => opts.model = Some(take(&args, &mut i)?),
            "--model-out" => opts.model_out = Some(take(&args, &mut i)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn build_harness(opts: &Opts) -> Harness {
    let mut cfg = HarnessConfig::standard(opts.dataset);
    if let Some(s) = opts.scale {
        cfg.scale = s.clamp(0.005, 1.0);
    }
    if let Some(e) = opts.epochs {
        cfg.epochs = e;
    }
    cfg.test_users = opts.users;
    cfg.m = opts.m;
    Harness::build(cfg)
}

fn irn_config(h: &Harness) -> IrnConfig {
    h.irn_config()
}

fn cmd_stats(opts: &Opts) -> ExitCode {
    let h = build_harness(opts);
    let s = dataset_stats(&h.dataset);
    println!(
        "{:<16} {:>7} {:>7} {:>12} {:>9} {:>11}",
        "dataset", "users", "items", "interactions", "density", "items/user"
    );
    println!("{s}");
    println!(
        "\nsplit: {} train / {} val subsequences, {} test users",
        h.split.train.len(),
        h.split.val.len(),
        h.split.test.len()
    );
    ExitCode::SUCCESS
}

fn cmd_train(opts: &Opts) -> ExitCode {
    let Some(out_path) = &opts.model_out else {
        eprintln!("train requires --model-out FILE");
        return ExitCode::from(2);
    };
    let h = build_harness(opts);
    eprintln!(
        "training IRN on {} ({} train subsequences)...",
        h.config.kind.label(),
        h.split.train.len()
    );
    let irn = h.train_irn();
    let file = match std::fs::File::create(out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = irn.save(std::io::BufWriter::new(file)) {
        eprintln!("save failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("model written to {out_path}");
    println!("val loss: {:.4}", irn.dataset_loss(&h.split.val));
    ExitCode::SUCCESS
}

fn load_model(opts: &Opts, h: &Harness) -> Result<Irn, String> {
    let Some(path) = &opts.model else {
        return Err("this command requires --model FILE (create one with `irs train`)".into());
    };
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Irn::load(
        std::io::BufReader::new(file),
        h.dataset.num_items,
        h.dataset.num_users,
        &irn_config(h),
    )
    .map_err(|e| format!("load failed: {e}"))
}

fn paths_for(h: &Harness, irn: &Irn, m: usize) -> Vec<PathRecord> {
    h.generate_paths(irn, m)
}

fn cmd_generate(opts: &Opts) -> ExitCode {
    let h = build_harness(opts);
    let irn = match load_model(opts, &h) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (test, objectives) = h.test_slice();
    for (tc, &obj) in test.iter().zip(&objectives) {
        let path = generate_influence_path(&irn, tc.user, &tc.history, obj, opts.m);
        let reached = path.last() == Some(&obj);
        println!(
            "user {:>4}  objective {:<28} [{}] {}",
            tc.user,
            h.dataset.item_name(obj),
            h.dataset.genre_label(obj),
            if reached { "REACHED" } else { "" }
        );
        for &item in &path {
            println!("    -> {:<28} [{}]", h.dataset.item_name(item), h.dataset.genre_label(item));
        }
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(opts: &Opts) -> ExitCode {
    let h = build_harness(opts);
    let irn = match load_model(opts, &h) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("training evaluator (Bert4Rec)...");
    let evaluator = Evaluator::new(h.train_bert4rec());
    let paths = paths_for(&h, &irn, opts.m);
    let metrics = evaluate_paths(&evaluator, &paths);
    println!("IRN on {} over {} users: {metrics}", h.config.kind.label(), paths.len());
    ExitCode::SUCCESS
}

fn cmd_demo(opts: &Opts) -> ExitCode {
    let mut opts = Opts { users: 10, ..parse_defaults(opts) };
    opts.scale = Some(opts.scale.unwrap_or(0.03));
    let h = build_harness(&opts);
    eprintln!("training IRN + evaluator at demo scale...");
    let irn = h.train_irn();
    let evaluator = Evaluator::new(h.train_bert4rec());
    let paths = paths_for(&h, &irn, opts.m.min(10));
    let metrics = evaluate_paths(&evaluator, &paths);
    println!("{metrics}");
    if let Some(rec) = paths.iter().find(|p| p.success()) {
        println!("\nexample successful path (user {}):", rec.user);
        for &item in &rec.path {
            println!("  -> {:<28} [{}]", h.dataset.item_name(item), h.dataset.genre_label(item));
        }
    }
    ExitCode::SUCCESS
}

fn parse_defaults(opts: &Opts) -> Opts {
    Opts {
        command: opts.command.clone(),
        dataset: opts.dataset,
        scale: opts.scale,
        epochs: opts.epochs,
        users: opts.users,
        m: opts.m,
        model: opts.model.clone(),
        model_out: opts.model_out.clone(),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match opts.command.as_str() {
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "generate" => cmd_generate(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "demo" => cmd_demo(&opts),
        _ => usage(),
    }
}
